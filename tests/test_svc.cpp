// Tests for the serving subsystem (src/svc, docs/SERVING.md): load
// generator determinism, batcher coalescing and timeout arming, CoDel
// admission control, LRU hit/eviction behavior, router shed/reroute
// policy and per-shard ReplicaSet failover, ShardIndex correctness on a
// real runtime, and end-to-end serve runs over real 2- and 4-device
// clusters — including bit-identical replay per (seed, fault plan),
// shed-not-hang under an injected shard stall, replica failover under
// primary stalls and crashes, and deadline-aware admission.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "apps/cbir.hpp"
#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "svc/batcher.hpp"
#include "svc/cache.hpp"
#include "svc/loadgen.hpp"
#include "svc/report.hpp"
#include "svc/router.hpp"
#include "svc/service.hpp"
#include "tshmem/cluster.hpp"
#include "tshmem/runtime.hpp"

namespace {

using apps::cbir::Feature;
using apps::cbir::FeatureCache;
using apps::cbir::Hit;
using svc::Arrival;
using svc::Batcher;
using svc::BatcherConfig;
using svc::LoadGen;
using svc::LoadGenConfig;
using svc::LruCache;
using svc::CodelAdmission;
using svc::CodelConfig;
using svc::PendingQuery;
using svc::ReplicaHealth;
using svc::ReplicaSet;
using svc::Router;
using svc::ServiceConfig;
using svc::ServiceReport;
using svc::ShedPolicy;

// ===========================================================================
// Load generator
// ===========================================================================

TEST(LoadGen, DeterministicPerSeed) {
  LoadGenConfig cfg;
  cfg.seed = 42;
  cfg.queries = 5000;
  cfg.start_qps = 50'000.0;
  cfg.end_qps = 200'000.0;
  cfg.key_space = 300;
  LoadGen a(cfg);
  LoadGen b(cfg);
  for (int i = 0; i < 5000; ++i) {
    const Arrival x = a.next();
    const Arrival y = b.next();
    EXPECT_EQ(x.at_ps, y.at_ps);
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.id, y.id);
  }
  EXPECT_TRUE(a.exhausted());
  EXPECT_THROW(a.next(), std::logic_error);
}

TEST(LoadGen, DifferentSeedsDiverge) {
  LoadGenConfig cfg;
  cfg.queries = 100;
  LoadGen a(cfg);
  cfg.seed = 2;
  LoadGen b(cfg);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next().at_ps == b.next().at_ps) ++same;
  }
  EXPECT_LT(same, 100);
}

TEST(LoadGen, ArrivalsAreMonotoneAndKeysInRange) {
  LoadGenConfig cfg;
  cfg.queries = 2000;
  cfg.key_space = 64;
  LoadGen gen(cfg);
  tilesim::ps_t last = 0;
  while (!gen.exhausted()) {
    const Arrival a = gen.next();
    EXPECT_GT(a.at_ps, last);
    last = a.at_ps;
    EXPECT_GE(a.key, 0);
    EXPECT_LT(a.key, 64);
  }
}

TEST(LoadGen, RampInterpolatesRates) {
  LoadGenConfig cfg;
  cfg.queries = 1001;
  cfg.start_qps = 10'000.0;
  cfg.end_qps = 110'000.0;
  LoadGen gen(cfg);
  EXPECT_DOUBLE_EQ(gen.rate_at(0), 10'000.0);
  EXPECT_DOUBLE_EQ(gen.rate_at(500), 60'000.0);
  EXPECT_DOUBLE_EQ(gen.rate_at(1000), 110'000.0);
}

TEST(LoadGen, ZipfSkewsTowardLowKeys) {
  LoadGenConfig cfg;
  cfg.queries = 20'000;
  cfg.key_space = 1000;
  cfg.zipf_s = 1.0;
  LoadGen gen(cfg);
  std::uint64_t head = 0;
  while (!gen.exhausted()) {
    if (gen.next().key < 100) ++head;
  }
  // Under Zipf(1.0) the top 10% of keys carry well over half the mass.
  EXPECT_GT(head, 10'000u);
}

// ===========================================================================
// Batcher
// ===========================================================================

TEST(Batcher, ClosesWhenFull) {
  Batcher b(BatcherConfig{3, 1'000'000});
  const auto r1 = b.add(PendingQuery{0, 10, 100}, 100);
  EXPECT_TRUE(r1.arm_timer);
  EXPECT_FALSE(r1.full);
  EXPECT_EQ(r1.deadline_ps, 1'000'100u);
  const auto r2 = b.add(PendingQuery{1, 11, 200}, 200);
  EXPECT_FALSE(r2.arm_timer);
  EXPECT_FALSE(r2.full);
  const auto r3 = b.add(PendingQuery{2, 12, 300}, 300);
  EXPECT_TRUE(r3.full);
  const auto batch = b.close();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].key, 10);
  EXPECT_EQ(batch[2].arrival_ps, 300u);
  EXPECT_EQ(b.open_size(), 0u);
}

TEST(Batcher, GenerationInvalidatesStaleTimers) {
  Batcher b(BatcherConfig{2, 5'000});
  const auto r1 = b.add(PendingQuery{0, 1, 0}, 0);
  const std::uint64_t gen0 = r1.generation;
  b.add(PendingQuery{1, 2, 10}, 10);  // full
  (void)b.close();
  EXPECT_NE(b.generation(), gen0);  // the armed timer for gen0 is stale
  // A fresh batch arms a fresh timer under the new generation.
  const auto r2 = b.add(PendingQuery{2, 3, 20}, 20);
  EXPECT_TRUE(r2.arm_timer);
  EXPECT_EQ(r2.generation, b.generation());
}

TEST(Batcher, CloseOfEmptyThrows) {
  Batcher b(BatcherConfig{4, 1000});
  EXPECT_THROW(b.close(), std::logic_error);
}

// ===========================================================================
// LRU cache
// ===========================================================================

TEST(LruCache, HitPromotesAndEvictsLeastRecent) {
  LruCache c(2);
  c.put(1, Hit{1, 0.0f});
  c.put(2, Hit{2, 0.0f});
  ASSERT_NE(c.get(1), nullptr);  // promotes key 1
  c.put(3, Hit{3, 0.0f});        // evicts key 2 (least recent)
  EXPECT_EQ(c.get(2), nullptr);
  EXPECT_NE(c.get(1), nullptr);
  EXPECT_NE(c.get(3), nullptr);
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_EQ(c.hits(), 3u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(LruCache, ZeroCapacityIsDisabled) {
  LruCache c(0);
  c.put(1, Hit{1, 0.0f});
  EXPECT_EQ(c.get(1), nullptr);
  EXPECT_EQ(c.size(), 0u);
}

TEST(LruCache, PutRefreshesExistingKey) {
  LruCache c(2);
  c.put(1, Hit{1, 1.0f});
  c.put(2, Hit{2, 0.0f});
  c.put(1, Hit{1, 0.5f});  // refresh: key 1 becomes most recent
  c.put(3, Hit{3, 0.0f});  // evicts key 2
  const Hit* h = c.get(1);
  ASSERT_NE(h, nullptr);
  EXPECT_FLOAT_EQ(h->distance, 0.5f);
  EXPECT_EQ(c.get(2), nullptr);
}

// ===========================================================================
// Router
// ===========================================================================

TEST(Router, HashSpreadsKeysAcrossShards) {
  Router r(4, ShedPolicy::kReject);
  std::set<int> seen;
  for (int k = 0; k < 256; ++k) {
    const int s = r.home_shard(k);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
    seen.insert(s);
    EXPECT_EQ(s, r.home_shard(k));  // stable
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Router, RejectShedsDegradedHome) {
  Router r(2, ShedPolicy::kReject);
  int key = 0;
  while (r.home_shard(key) != 1) ++key;
  r.set_health(1, false);
  const auto route = r.route(key);
  EXPECT_EQ(route.shard, -1);
  r.set_health(1, true);
  EXPECT_EQ(r.route(key).shard, 1);
}

TEST(Router, RerouteFindsNextHealthyShardOrSheds) {
  Router r(3, ShedPolicy::kReroute);
  int key = 0;
  while (r.home_shard(key) != 0) ++key;
  r.set_health(0, false);
  const auto route = r.route(key);
  EXPECT_EQ(route.shard, 1);
  EXPECT_TRUE(route.rerouted);
  r.set_health(1, false);
  EXPECT_EQ(r.route(key).shard, 2);
  r.set_health(2, false);
  EXPECT_EQ(r.route(key).shard, -1);  // whole fleet degraded
}

TEST(Router, RerouteWrapsPastShardZero) {
  // A degraded *last* shard must wrap the ring scan through shard 0, not
  // run off the end of the fleet.
  Router r(3, ShedPolicy::kReroute);
  int key = 0;
  while (r.home_shard(key) != 2) ++key;
  r.set_health(2, false);
  const auto route = r.route(key);
  EXPECT_EQ(route.shard, 0);  // (2 + 1) % 3
  EXPECT_TRUE(route.rerouted);
  // Wrap again: shard 0 also degraded, the scan continues to shard 1.
  r.set_health(0, false);
  EXPECT_EQ(r.route(key).shard, 1);
}

TEST(Router, AllShardsDegradedShedsInsteadOfLooping) {
  // The ring scan is bounded at one lap: a fully degraded fleet returns a
  // shed verdict instead of scanning forever.
  Router r(4, ShedPolicy::kReroute);
  for (int s = 0; s < 4; ++s) r.set_health(s, false);
  for (int key = 0; key < 64; ++key) {
    const auto route = r.route(key);
    EXPECT_EQ(route.shard, -1);
    EXPECT_EQ(route.replica, -1);
    EXPECT_FALSE(route.rerouted);
  }
}

TEST(Router, SingleShardFleetRoutesOrSheds) {
  // With one shard there is nowhere to reroute: healthy routes home,
  // degraded sheds immediately under either policy.
  for (const ShedPolicy policy :
       {ShedPolicy::kReject, ShedPolicy::kReroute}) {
    Router r(1, policy);
    EXPECT_EQ(r.route(17).shard, 0);
    r.set_health(0, false);
    EXPECT_EQ(r.route(17).shard, -1);
    r.set_health(0, true);
    EXPECT_EQ(r.route(17).shard, 0);
  }
}

// ===========================================================================
// ReplicaSet failover / failback
// ===========================================================================

TEST(ReplicaSet, PrefersPrimaryAndFailsOverInIndexOrder) {
  ReplicaSet set(3);
  EXPECT_EQ(set.pick(), 0);  // healthy primary wins
  set.set_state(0, ReplicaHealth::kDegraded);
  EXPECT_EQ(set.pick(), 1);  // lowest-index healthy backup
  set.set_state(1, ReplicaHealth::kCrashed);
  EXPECT_EQ(set.pick(), 2);
  set.set_state(0, ReplicaHealth::kHealthy);
  EXPECT_EQ(set.pick(), 0);  // automatic failback
}

TEST(ReplicaSet, CrashedReplicasAreNeverPicked) {
  ReplicaSet set(2);
  set.set_state(0, ReplicaHealth::kCrashed);
  EXPECT_EQ(set.pick(), 1);
  set.set_state(1, ReplicaHealth::kCrashed);
  EXPECT_EQ(set.pick(), -1);
  EXPECT_FALSE(set.available());
  EXPECT_THROW(set.set_state(2, ReplicaHealth::kHealthy),
               std::out_of_range);
}

TEST(Router, ReplicaFailoverStaysOnHomeShard) {
  Router r(2, ShedPolicy::kReject, 2);
  int key = 0;
  while (r.home_shard(key) != 1) ++key;
  // Healthy primary: no failover flag.
  auto route = r.route(key);
  EXPECT_EQ(route.shard, 1);
  EXPECT_EQ(route.replica, 0);
  EXPECT_FALSE(route.failover);
  // Degraded primary: the backup serves the same shard slice.
  r.set_replica_health(1, 0, ReplicaHealth::kDegraded);
  route = r.route(key);
  EXPECT_EQ(route.shard, 1);
  EXPECT_EQ(route.replica, 1);
  EXPECT_TRUE(route.failover);
  EXPECT_FALSE(route.rerouted);
  // Both replicas gone: kReject sheds.
  r.set_replica_health(1, 1, ReplicaHealth::kCrashed);
  EXPECT_EQ(r.route(key).shard, -1);
  // Primary recovers: traffic fails back to it.
  r.set_replica_health(1, 0, ReplicaHealth::kHealthy);
  route = r.route(key);
  EXPECT_EQ(route.replica, 0);
  EXPECT_FALSE(route.failover);
}

TEST(Router, RerouteScansReplicasOfOtherShards) {
  Router r(2, ShedPolicy::kReroute, 2);
  int key = 0;
  while (r.home_shard(key) != 0) ++key;
  r.set_replica_health(0, 0, ReplicaHealth::kCrashed);
  r.set_replica_health(0, 1, ReplicaHealth::kCrashed);
  r.set_replica_health(1, 0, ReplicaHealth::kDegraded);
  // Home slice lost both replicas; the ring scan lands on shard 1's
  // backup — rerouted *and* failover.
  const auto route = r.route(key);
  EXPECT_EQ(route.shard, 1);
  EXPECT_EQ(route.replica, 1);
  EXPECT_TRUE(route.rerouted);
  EXPECT_TRUE(route.failover);
}

// ===========================================================================
// CoDel admission control
// ===========================================================================

TEST(CodelAdmission, DropsOnlyAfterFullIntervalAboveTarget) {
  CodelConfig cfg;
  cfg.target_ps = 100;
  cfg.interval_ps = 1000;
  CodelAdmission codel(cfg);
  EXPECT_TRUE(codel.admit(50, 0));     // below target
  EXPECT_TRUE(codel.admit(200, 0));    // first sighting: interval starts
  EXPECT_TRUE(codel.admit(200, 999));  // still inside the interval
  EXPECT_FALSE(codel.admit(200, 1000));  // full interval above: drop
  EXPECT_EQ(codel.drops(), 1u);
  // The control law shortens the next interval (1000 / sqrt(2) ~ 707).
  EXPECT_TRUE(codel.admit(200, 1100));
  EXPECT_FALSE(codel.admit(200, 1000 + 707));
  EXPECT_EQ(codel.drops(), 2u);
  // Dropping state resets as soon as the sojourn recovers.
  EXPECT_TRUE(codel.admit(50, 2000));
  EXPECT_TRUE(codel.admit(200, 2000));  // fresh interval, no drop
  EXPECT_EQ(codel.drops(), 2u);
}

TEST(CodelAdmission, DisabledTargetAdmitsEverything) {
  CodelAdmission codel(CodelConfig{});
  EXPECT_FALSE(codel.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(codel.admit(1'000'000'000, i));
  }
  EXPECT_EQ(codel.drops(), 0u);
}

// ===========================================================================
// ShardIndex on a real runtime
// ===========================================================================

TEST(ShardIndex, SelfRetrievalAtDistanceZero) {
  apps::cbir::Params p;
  p.images = 24;
  p.width = 32;
  p.height = 32;
  tshmem::Runtime rt(tilesim::tile_gx36());
  rt.run(4, [&](tshmem::Context& ctx) {
    apps::cbir::ShardIndex index(ctx, p, 0, p.images);
    std::vector<std::uint8_t> img(static_cast<std::size_t>(p.width) *
                                  p.height);
    // Query with the exact feature of images 5 and 17: the index must
    // return them at distance 0 on every PE.
    std::vector<Feature> queries;
    for (const int k : {5, 17}) {
      apps::cbir::generate_image(img, p.width, p.height,
                                 p.seed + static_cast<std::uint64_t>(k));
      queries.push_back(FeatureCache::shared()
                            .seeded(img, p.width, p.height,
                                    p.seed + static_cast<std::uint64_t>(k))
                            .feature);
    }
    std::vector<Hit> out(2);
    index.query_batch(ctx, queries, out);
    EXPECT_EQ(out[0].image, 5);
    EXPECT_FLOAT_EQ(out[0].distance, 0.0f);
    EXPECT_EQ(out[1].image, 17);
    EXPECT_FLOAT_EQ(out[1].distance, 0.0f);
    const Hit single = index.query(ctx, queries[0]);
    EXPECT_EQ(single.image, 5);
    index.destroy(ctx);
  });
}

// ===========================================================================
// End-to-end service over a real 2-device cluster
// ===========================================================================

ServiceConfig small_service_config() {
  ServiceConfig cfg;
  cfg.pes_per_shard = 2;
  cfg.db.images = 64;
  cfg.db.width = 32;
  cfg.db.height = 32;
  cfg.load.seed = 7;
  cfg.load.queries = 4000;
  cfg.load.start_qps = 20'000.0;
  cfg.load.end_qps = 120'000.0;
  cfg.load.key_space = 64;
  cfg.batch.max_batch = 4;
  cfg.batch.timeout_ps = 2'000'000;
  cfg.cache_capacity = 32;
  return cfg;
}

std::string report_fingerprint(const ServiceReport& rep,
                               const ServiceConfig& cfg) {
  std::ostringstream os;
  svc::write_report_json(os, rep, cfg);
  return os.str();
}

TEST(Service, HealthyRunCompletesEverything) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  const ServiceConfig cfg = small_service_config();
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.offered, 4000u);
  EXPECT_EQ(rep.completed + rep.shed, rep.offered);
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_GT(rep.qps, 0.0);
  EXPECT_GT(rep.cache_hits, 0u);
  EXPECT_LE(rep.latency.p50, rep.latency.p99);
  EXPECT_LE(rep.latency.p99, rep.latency.p999);
  EXPECT_EQ(rep.fault_events, 0u);
  ASSERT_EQ(rep.calibration.size(), 2u);
  EXPECT_GT(rep.calibration[0].per_query_ps, 0);
  EXPECT_EQ(rep.calibration[0].count, 32);
  EXPECT_EQ(rep.calibration[1].first, 32);
}

TEST(Service, ReplayIsBitIdenticalPerSeedAndPlan) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  ServiceConfig cfg = small_service_config();
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,shard_stall=0.1:30000000000");
  svc::Service s1(cluster, cfg);
  const std::string a = report_fingerprint(s1.run(), cfg);
  svc::Service s2(cluster, cfg);
  const std::string b = report_fingerprint(s2.run(), cfg);
  EXPECT_EQ(a, b);
  // A different load seed must change the outcome.
  cfg.load.seed = 8;
  svc::Service s3(cluster, cfg);
  const std::string c = report_fingerprint(s3.run(), cfg);
  EXPECT_NE(a, c);
}

TEST(Service, StalledShardShedsInsteadOfHanging) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  ServiceConfig cfg = small_service_config();
  // Every batch on shard 1 loses 30 ms: far past the 5 ms backlog
  // watchdog, so the router must shed its traffic and record recoveries
  // once the backlog drains.
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,shard_stall=1.0:30000000000,shard_stall_shard=1");
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_GT(rep.shed, 0u);
  EXPECT_EQ(rep.completed + rep.shed, rep.offered);
  const svc::ShardStats& stalled = rep.shard_stats[1];
  EXPECT_GT(stalled.stall_events, 0u);
  EXPECT_GT(stalled.degraded_episodes, 0u);
  EXPECT_GT(stalled.recoveries, 0u);
  EXPECT_EQ(rep.shard_stats[0].stall_events, 0u);
  EXPECT_FALSE(rep.shed_error.empty());
  EXPECT_NE(rep.shed_error.find("shard_degraded"), std::string::npos);
  // Accepted queries drain with bounded tail latency: a handful of
  // 30 ms stalled batches at most, never an unbounded hang.
  EXPECT_LT(rep.max_latency_ps, 200'000'000'000u);  // 200 ms
}

TEST(Service, RerouteSendsTrafficToHealthyShard) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  ServiceConfig cfg = small_service_config();
  cfg.policy = ShedPolicy::kReroute;
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,shard_stall=1.0:30000000000,shard_stall_shard=1");
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_GT(rep.rerouted, 0u);
  EXPECT_EQ(rep.completed + rep.shed, rep.offered);
  // The healthy shard absorbs the degraded shard's traffic.
  EXPECT_GT(rep.shard_stats[0].queries, rep.shard_stats[1].queries);
}

TEST(Service, ClosedLoopKeepsWindowAndCompletes) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  ServiceConfig cfg = small_service_config();
  cfg.closed_loop = true;
  cfg.concurrency = 16;
  cfg.load.queries = 2000;
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.offered, 2000u);
  EXPECT_EQ(rep.completed + rep.shed, rep.offered);
  EXPECT_EQ(rep.hung, 0u);
}

// ===========================================================================
// Replicated serving over a real 4-device cluster (2 shards x 2 replicas)
// ===========================================================================

TEST(Service, FailoverAbsorbsPrimaryStallWithoutShedding) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 4);
  ServiceConfig cfg = small_service_config();
  cfg.replicas = 2;
  // Replica slot 1 is shard 1's *primary* (replica-major layout), so the
  // stock stall plan hits exactly the device the unreplicated run loses.
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,shard_stall=1.0:30000000000,shard_stall_shard=1");
  svc::Service service(cluster, cfg);
  EXPECT_EQ(service.num_shards(), 2);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_EQ(rep.completed + rep.shed, rep.offered);
  // The backup replica serves shard 1 while its primary is degraded:
  // nothing sheds, unlike the unreplicated StalledShard run.
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_GT(rep.failover_routed, 0u);
  EXPECT_GT(rep.failbacks, 0u);
  ASSERT_EQ(rep.shard_stats.size(), 4u);
  // The backup (slot 3 = shard 1, replica 1) did real work.
  EXPECT_GT(rep.shard_stats[3].queries, 0u);
  EXPECT_GT(rep.shard_stats[1].degraded_episodes, 0u);
  ASSERT_EQ(rep.calibration.size(), 4u);
  // Replicas of one shard cover the same database slice.
  EXPECT_EQ(rep.calibration[1].first, rep.calibration[3].first);
  EXPECT_EQ(rep.calibration[1].count, rep.calibration[3].count);
  EXPECT_EQ(rep.calibration[3].replica, 1);
}

TEST(Service, CrashFailsOverAndReplaysBitIdentically) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 4);
  ServiceConfig cfg = small_service_config();
  cfg.replicas = 2;
  // Shard 1's primary dies at its first batch dispatch and never
  // returns; its queued queries requeue onto the surviving backup.
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,shard_crash=1.0,shard_crash_shard=1");
  svc::Service s1(cluster, cfg);
  const ServiceReport rep = s1.run();
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_EQ(rep.replica_crashes, 1u);
  EXPECT_EQ(rep.shard_stats[1].crashes, 1u);
  EXPECT_EQ(rep.shard_stats[1].flaps, 0u);
  EXPECT_GT(rep.failover_routed, 0u);
  EXPECT_EQ(rep.completed, rep.offered);
  // The crash campaign replays bit-identically (same full report JSON).
  svc::Service s2(cluster, cfg);
  EXPECT_EQ(report_fingerprint(rep, cfg),
            report_fingerprint(s2.run(), cfg));
}

TEST(Service, LosingEveryReplicaShedsWithReplicaLost) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  ServiceConfig cfg = small_service_config();
  // Unreplicated: when shard 1's only replica crashes, its slice is gone
  // for good — every later query for it sheds with kReplicaLost.
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,shard_crash=1.0,shard_crash_shard=1");
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_GT(rep.shed, 0u);
  EXPECT_GT(rep.replica_lost, 0u);
  EXPECT_EQ(rep.completed + rep.shed, rep.offered);
  EXPECT_EQ(rep.shard_stats[1].crashes, 1u);
  EXPECT_NE(rep.shed_error.find("replica_lost"), std::string::npos);
  // The crashed shard never recovers: no recoveries after the crash.
  EXPECT_EQ(rep.shard_stats[1].recoveries, 0u);
}

TEST(Service, ReplicaFlapCrashesAndRecovers) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 4);
  ServiceConfig cfg = small_service_config();
  cfg.replicas = 2;
  // Shard 1's primary flaps: dies for 40 ms at seeded dispatches, then
  // revives. Every death requeues onto the backup; every revival is a
  // failback.
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,replica_flap=0.2:40000000000,replica_flap_shard=1");
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_EQ(rep.shed, 0u);
  EXPECT_GT(rep.replica_crashes, 0u);
  EXPECT_EQ(rep.shard_stats[1].flaps, rep.shard_stats[1].crashes);
  EXPECT_GT(rep.shard_stats[1].recoveries, 0u);
  EXPECT_GT(rep.failbacks, 0u);
  EXPECT_EQ(rep.completed, rep.offered);
}

TEST(Service, DeadlineAdmissionDropsInsteadOfQueueing) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  ServiceConfig cfg = small_service_config();
  cfg.deadline_ps = 2'000'000'000;  // 2 ms, well under the 30 ms stall
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,shard_stall=1.0:30000000000,shard_stall_shard=1");
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_GT(rep.deadline_dropped, 0u);
  // The full accounting invariant now includes admission drops.
  EXPECT_EQ(rep.completed + rep.shed + rep.deadline_dropped, rep.offered);
}

TEST(Service, CodelAdmissionShedsStandingQueue) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  ServiceConfig cfg = small_service_config();
  cfg.codel.target_ps = 1'000'000'000;   // 1 ms sojourn target
  cfg.codel.interval_ps = 5'000'000'000;  // 5 ms interval
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,shard_stall=1.0:30000000000,shard_stall_shard=1");
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_GT(rep.codel_dropped, 0u);
  EXPECT_EQ(rep.codel_dropped, rep.deadline_dropped);  // only CoDel ran
  EXPECT_EQ(rep.completed + rep.shed + rep.deadline_dropped, rep.offered);
}

TEST(Service, ReplicatedHealthyRunMatchesUnreplicatedTotals) {
  // With no faults, replication must be invisible in the aggregate
  // accounting: the primary serves everything, the backups stay idle.
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 4);
  ServiceConfig cfg = small_service_config();
  cfg.replicas = 2;
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.offered, 4000u);
  EXPECT_EQ(rep.completed, rep.offered);
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_EQ(rep.failover_routed, 0u);
  EXPECT_EQ(rep.replica_crashes, 0u);
  EXPECT_EQ(rep.shard_stats[2].queries, 0u);  // idle backups
  EXPECT_EQ(rep.shard_stats[3].queries, 0u);
}

TEST(Service, MismatchedReplicaLayoutThrows) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 3);
  ServiceConfig cfg = small_service_config();
  cfg.replicas = 2;  // 3 devices cannot hold shards * 2
  EXPECT_THROW(svc::Service(cluster, cfg), std::invalid_argument);
  cfg.replicas = 0;
  EXPECT_THROW(svc::Service(cluster, cfg), std::invalid_argument);
}

}  // namespace
