// Tests for TMC spin/sync barriers: real rendezvous semantics plus the
// Fig 5 latency models, and the interrupt controller.
#include <gtest/gtest.h>

#include <atomic>

#include "sim/device.hpp"
#include "tmc/barrier.hpp"
#include "tmc/interrupt.hpp"

namespace {

using tilesim::Device;
using tilesim::Tile;
using tmc::SpinBarrier;
using tmc::SyncBarrier;
using tmc::VtBarrier;

TEST(VtBarrier, RendezvousIsReal) {
  Device device(tilesim::tile_gx36());
  VtBarrier barrier(4, [](tilesim::ps_t t, int) { return t; });
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  device.run(4, [&](Tile& tile) {
    before.fetch_add(1);
    barrier.wait(tile);
    // Every tile must observe all arrivals before any release.
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 4);
}

TEST(VtBarrier, ReleasesAtMaxArrivalPlusModel) {
  Device device(tilesim::tile_gx36());
  VtBarrier barrier(3, [](tilesim::ps_t t, int n) {
    return t + static_cast<tilesim::ps_t>(n) * 1000;
  });
  device.run(3, [&](Tile& tile) {
    tile.clock().advance(static_cast<tilesim::ps_t>(tile.id()) * 500'000);
    barrier.wait(tile);
    EXPECT_EQ(tile.clock().now(), 1'000'000u + 3'000u);  // max + 3*1000
  });
}

TEST(VtBarrier, ReusableAcrossGenerations) {
  Device device(tilesim::tile_gx36());
  VtBarrier barrier(4, [](tilesim::ps_t t, int) { return t + 100; });
  std::atomic<int> counter{0};
  device.run(4, [&](Tile& tile) {
    for (int round = 0; round < 50; ++round) {
      counter.fetch_add(1);
      barrier.wait(tile);
      // All 4 increments of this round must be visible.
      EXPECT_GE(counter.load(), (round + 1) * 4);
    }
  });
  EXPECT_EQ(counter.load(), 200);
}

TEST(VtBarrier, Validation) {
  EXPECT_THROW(VtBarrier(0, [](tilesim::ps_t t, int) { return t; }),
               std::invalid_argument);
  EXPECT_THROW(VtBarrier(2, nullptr), std::invalid_argument);
}

TEST(SpinBarrier, ModelMatchesFig5Anchors) {
  // 1.5 us @ 36 tiles on the Gx; 47.2 us @ 36 tiles on the Pro.
  const auto gx36 =
      SpinBarrier::model_latency_ps(tilesim::tile_gx36(), 36);
  EXPECT_NEAR(static_cast<double>(gx36) / 1e6, 1.5, 0.1);
  const auto pro36 =
      SpinBarrier::model_latency_ps(tilesim::tile_pro64(), 36);
  EXPECT_NEAR(static_cast<double>(pro36) / 1e6, 47.2, 1.0);
}

TEST(SyncBarrier, ModelMatchesFig5Anchors) {
  const auto gx36 =
      SyncBarrier::model_latency_ps(tilesim::tile_gx36(), 36);
  EXPECT_NEAR(static_cast<double>(gx36) / 1e6, 321.0, 5.0);
  const auto pro36 =
      SyncBarrier::model_latency_ps(tilesim::tile_pro64(), 36);
  EXPECT_NEAR(static_cast<double>(pro36) / 1e6, 786.0, 10.0);
}

TEST(Barriers, SpinBeatsSyncEverywhere) {
  for (const auto* cfg : tilesim::all_devices()) {
    for (int n = 2; n <= 36; n += 2) {
      EXPECT_LT(SpinBarrier::model_latency_ps(*cfg, n),
                SyncBarrier::model_latency_ps(*cfg, n));
    }
  }
}

TEST(Barriers, GxSpinBeatsProSpin) {
  // Fig 5: "the spin barrier for the TILE-Gx significantly outperforms the
  // TILEPro's".
  for (int n = 2; n <= 36; ++n) {
    EXPECT_LT(SpinBarrier::model_latency_ps(tilesim::tile_gx36(), n) * 5,
              SpinBarrier::model_latency_ps(tilesim::tile_pro64(), n));
  }
}

TEST(SpinBarrier, VirtualLatencyObserved) {
  Device device(tilesim::tile_gx36());
  SpinBarrier barrier(device, 8);
  device.run(8, [&](Tile& tile) {
    const auto t0 = tile.clock().now();
    barrier.wait(tile);
    const auto dt = tile.clock().now() - t0;
    EXPECT_EQ(dt, SpinBarrier::model_latency_ps(device.config(), 8));
  });
}

TEST(MemFence, AdvancesClockSlightly) {
  Device device(tilesim::tile_gx36());
  device.run(1, [&](Tile& tile) {
    const auto t0 = tile.clock().now();
    tmc::mem_fence(tile);
    EXPECT_GT(tile.clock().now(), t0);
    EXPECT_LT(tile.clock().now() - t0, 100'000u);  // well under 100 ns
  });
}

// --- interrupts --------------------------------------------------------------

TEST(Interrupts, SupportedOnlyOnGx) {
  Device gx(tilesim::tile_gx36());
  Device pro(tilesim::tile_pro64());
  EXPECT_TRUE(tmc::InterruptController(gx).supported());
  EXPECT_FALSE(tmc::InterruptController(pro).supported());
}

TEST(Interrupts, HandlerChargesRemoteClock) {
  Device device(tilesim::tile_gx36());
  tmc::InterruptController intc(device);
  device.run(2, [&](Tile& tile) {
    tile.device().host_sync();
    if (tile.id() == 0) {
      intc.raise(tile, 1, [&](Tile& remote) {
        EXPECT_EQ(remote.id(), 1);
        remote.clock().advance(123'000);
      });
      // Requester waits for the service completion.
      EXPECT_GE(tile.clock().now(),
                device.config().interrupt_dispatch_ps +
                    device.config().interrupt_service_ps + 123'000);
      EXPECT_EQ(intc.serviced(1), 1u);
      EXPECT_EQ(intc.serviced(0), 0u);
    }
    tile.device().host_sync();  // keep tile 1 alive until serviced
  });
}

TEST(Interrupts, RaiseOnProThrows) {
  Device pro(tilesim::tile_pro64());
  tmc::InterruptController intc(pro);
  pro.run(2, [&](Tile& tile) {
    if (tile.id() == 0) {
      EXPECT_THROW(intc.raise(tile, 1, [](Tile&) {}), std::runtime_error);
    }
  });
}

TEST(Interrupts, SelfInterruptAndBadTargetThrow) {
  Device gx(tilesim::tile_gx36());
  tmc::InterruptController intc(gx);
  gx.run(1, [&](Tile& tile) {
    EXPECT_THROW(intc.raise(tile, 0, [](Tile&) {}), std::invalid_argument);
    EXPECT_THROW(intc.raise(tile, 99, [](Tile&) {}), std::invalid_argument);
  });
}

TEST(Interrupts, SerializedPerTargetTile) {
  Device gx(tilesim::tile_gx36());
  tmc::InterruptController intc(gx);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_seen{0};
  gx.run(8, [&](Tile& tile) {
    tile.device().host_sync();
    if (tile.id() != 7) {
      for (int i = 0; i < 10; ++i) {
        intc.raise(tile, 7, [&](Tile&) {
          const int now = concurrent.fetch_add(1) + 1;
          int prev = max_seen.load();
          while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
          }
          concurrent.fetch_sub(1);
        });
      }
    }
    tile.device().host_sync();
    if (tile.id() == 0) {
      EXPECT_EQ(max_seen.load(), 1);  // one handler at a time
      EXPECT_EQ(intc.serviced(7), 70u);
    }
  });
}

}  // namespace
