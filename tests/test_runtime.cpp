// Tests for the TSHMEM runtime: launching, partitions, static registry,
// shmalloc family semantics, address classification, and finalize.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::AddrClass;
using tshmem::Context;
using tshmem::Runtime;
using tshmem::RuntimeOptions;
using tshmem::StaticRegistry;

TEST(StaticRegistry, StableOffsetsAndAlignment) {
  StaticRegistry reg(1 << 20);
  const auto a = reg.reserve("counter", 8, 8);
  const auto b = reg.reserve("array", 1000, 64);
  EXPECT_EQ(a.offset % 8, 0u);
  EXPECT_EQ(b.offset % 64, 0u);
  EXPECT_GE(b.offset, a.offset + a.bytes);
  // Idempotent lookup.
  EXPECT_EQ(reg.reserve("counter", 8, 8).offset, a.offset);
  EXPECT_EQ(reg.object_count(), 2u);
}

TEST(StaticRegistry, SizeConflictThrows) {
  StaticRegistry reg(1 << 20);
  (void)reg.reserve("x", 8, 8);
  EXPECT_THROW((void)reg.reserve("x", 16, 8), std::invalid_argument);
}

TEST(StaticRegistry, ExhaustionThrows) {
  StaticRegistry reg(128);
  (void)reg.reserve("a", 100, 16);
  EXPECT_THROW((void)reg.reserve("b", 100, 16), std::runtime_error);
}

TEST(StaticRegistry, Validation) {
  StaticRegistry reg(1024);
  EXPECT_THROW((void)reg.reserve("z", 0, 8), std::invalid_argument);
  EXPECT_THROW((void)reg.reserve("z", 8, 3), std::invalid_argument);
}

TEST(Runtime, RejectsBadNpes) {
  Runtime rt(tilesim::tile_gx36());
  EXPECT_THROW(rt.run(0, [](Context&) {}), std::invalid_argument);
  EXPECT_THROW(rt.run(37, [](Context&) {}), std::invalid_argument);
}

TEST(Runtime, Pro64Allows64Pes) {
  RuntimeOptions opts;
  opts.heap_per_pe = 1 << 20;  // keep the arena small for 64 PEs
  Runtime rt(tilesim::tile_pro64(), opts);
  std::atomic<int> count{0};
  rt.run(64, [&](Context& ctx) {
    count.fetch_add(1);
    ctx.barrier_all();
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(Runtime, ExceptionInOnePePropagates) {
  Runtime rt(tilesim::tile_gx36());
  EXPECT_THROW(rt.run(4,
                      [](Context& ctx) {
                        if (ctx.my_pe() == 2) {
                          throw std::runtime_error("boom");
                        }
                      }),
               std::runtime_error);
  // Runtime must be reusable after a failed job.
  rt.run(2, [](Context& ctx) { ctx.barrier_all(); });
}

TEST(Runtime, PartitionsAreDisjointPerPe) {
  Runtime rt(tilesim::tile_gx36());
  std::mutex mu;
  std::set<void*> bases;
  rt.run(6, [&](Context& ctx) {
    void* p = ctx.shmalloc(64);
    {
      std::scoped_lock lk(mu);
      bases.insert(p);
    }
    ctx.barrier_all();
    ctx.shfree(p);
  });
  EXPECT_EQ(bases.size(), 6u);  // same offset, different partitions
}

TEST(Runtime, ShmallocOffsetsAreSymmetric) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(4, [](Context& ctx) {
    void* a = ctx.shmalloc(100);
    void* b = ctx.shmalloc(200);
    // Identical allocation sequences give identical partition offsets, so
    // remote_addr on b must land at b's offset in every partition.
    for (int pe = 0; pe < ctx.num_pes(); ++pe) {
      auto* mine = static_cast<std::byte*>(b);
      auto* theirs = static_cast<std::byte*>(ctx.remote_addr(b, pe));
      auto* my_base = static_cast<std::byte*>(ctx.remote_addr(a, ctx.my_pe()));
      auto* their_base = static_cast<std::byte*>(ctx.remote_addr(a, pe));
      EXPECT_EQ(mine - my_base, theirs - their_base);
    }
    ctx.shfree(b);
    ctx.shfree(a);
  });
}

TEST(Runtime, ClassifyAddressKinds) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    void* dyn = ctx.shmalloc(64);
    int* stat = ctx.static_sym<int>("classify_test", 4);
    int local = 0;
    EXPECT_EQ(ctx.classify(dyn), AddrClass::kDynamic);
    EXPECT_EQ(ctx.classify(stat), AddrClass::kStatic);
    EXPECT_EQ(ctx.classify(&local), AddrClass::kOther);
    ctx.shfree(dyn);
  });
}

TEST(Runtime, StaticSymSameOffsetPrivateStorage) {
  Runtime rt(tilesim::tile_gx36());
  std::mutex mu;
  std::vector<std::pair<int, int*>> ptrs;
  rt.run(4, [&](Context& ctx) {
    int* p = ctx.static_sym<int>("per_pe_counter");
    *p = ctx.my_pe() * 11;
    ctx.barrier_all();
    {
      std::scoped_lock lk(mu);
      ptrs.emplace_back(ctx.my_pe(), p);
    }
    ctx.barrier_all();
    // My write must not have been clobbered: storage is private per PE.
    EXPECT_EQ(*p, ctx.my_pe() * 11);
  });
  std::set<int*> unique;
  for (const auto& [pe, p] : ptrs) unique.insert(p);
  EXPECT_EQ(unique.size(), 4u);
}

TEST(Runtime, ShmemPtrOnlyForDynamic) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    int* dyn = ctx.shmalloc_n<int>(1);
    int* stat = ctx.static_sym<int>("ptr_test");
    EXPECT_NE(ctx.ptr(dyn, 1 - ctx.my_pe()), nullptr);
    EXPECT_EQ(ctx.ptr(stat, 1 - ctx.my_pe()), nullptr);
    EXPECT_EQ(ctx.ptr(dyn, 99), nullptr);
    // shmem_ptr gives a direct load/store path to the remote object.
    if (ctx.my_pe() == 0) *dyn = 123;
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      const int* remote = static_cast<int*>(ctx.ptr(dyn, 0));
      EXPECT_EQ(*remote, 123);
    }
    ctx.barrier_all();
    ctx.shfree(dyn);
  });
}

TEST(Runtime, AccessibilityQueries) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(3, [](Context& ctx) {
    int* dyn = ctx.shmalloc_n<int>(1);
    int local = 0;
    EXPECT_TRUE(ctx.pe_accessible(0));
    EXPECT_TRUE(ctx.pe_accessible(2));
    EXPECT_FALSE(ctx.pe_accessible(3));
    EXPECT_FALSE(ctx.pe_accessible(-1));
    EXPECT_TRUE(ctx.addr_accessible(dyn, 1));
    EXPECT_FALSE(ctx.addr_accessible(&local, 1));
    ctx.shfree(dyn);
  });
}

TEST(Runtime, ShreallocPreservesData) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    int* p = ctx.shmalloc_n<int>(4);
    for (int i = 0; i < 4; ++i) p[i] = i + ctx.my_pe();
    int* q = static_cast<int*>(ctx.shrealloc(p, 64 * sizeof(int)));
    ASSERT_NE(q, nullptr);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(q[i], i + ctx.my_pe());
    ctx.shfree(q);
  });
}

TEST(Runtime, ShmemalignAllocatesAligned) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    void* p = ctx.shmemalign(4096, 100);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 4096, 0u);
    EXPECT_EQ(ctx.classify(p), AddrClass::kDynamic);
    ctx.shfree(p);
  });
}

TEST(Runtime, FinalizeValidatesAndRejectsDoubleCall) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    ctx.barrier_all();
    ctx.finalize();
    EXPECT_TRUE(ctx.finalized());
    EXPECT_THROW(ctx.finalize(), std::logic_error);
  });
}

TEST(Runtime, DeliveryClockMonotone) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long* slot = ctx.shmalloc_n<long>(1);
    *slot = 0;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      ctx.p(slot, 1L, 1);
      const auto after_first = ctx.runtime().last_delivery(1);
      EXPECT_GT(after_first, 0u);
      ctx.p(slot, 2L, 1);
      EXPECT_GE(ctx.runtime().last_delivery(1), after_first);
    }
    ctx.barrier_all();
    ctx.shfree(slot);
  });
}

TEST(Runtime, RunSpmdHelper) {
  std::atomic<int> hits{0};
  tshmem::run_spmd(tilesim::tile_pro64(), 3,
                   [&](Context& ctx) { hits.fetch_add(1 + ctx.my_pe()); });
  EXPECT_EQ(hits.load(), 6);
}

TEST(Runtime, CurrentContextOnlyInsideRun) {
  EXPECT_EQ(Runtime::current(), nullptr);
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    EXPECT_EQ(Runtime::current(), &ctx);
  });
  EXPECT_EQ(Runtime::current(), nullptr);
}

}  // namespace
