// Tests for the symmetric-heap allocator (the doubly-linked-list design of
// paper §IV-A): allocation, splitting, coalescing, realloc, memalign, and
// the symmetric-offset property across independent heaps.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "tshmem/symheap.hpp"
#include "util/rng.hpp"

namespace {

using tshmem::SymHeap;

class SymHeapTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kBytes = 1 << 20;
  alignas(64) std::byte storage_[kBytes];
  SymHeap heap_{storage_, kBytes};
};

TEST_F(SymHeapTest, AllocReturnsAlignedDistinctBlocks) {
  void* a = heap_.alloc(100);
  void* b = heap_.alloc(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 16, 0u);
  EXPECT_TRUE(heap_.validate());
}

TEST_F(SymHeapTest, ZeroAllocReturnsNull) {
  EXPECT_EQ(heap_.alloc(0), nullptr);
}

TEST_F(SymHeapTest, ExhaustionReturnsNullLikeShmalloc) {
  EXPECT_EQ(heap_.alloc(2 * kBytes), nullptr);
  void* p = heap_.alloc(100);
  EXPECT_NE(p, nullptr);
  EXPECT_TRUE(heap_.validate());
}

TEST_F(SymHeapTest, FreeCoalescesNeighbors) {
  void* a = heap_.alloc(1000);
  void* b = heap_.alloc(1000);
  void* c = heap_.alloc(1000);
  const std::size_t before = heap_.largest_free_block();
  heap_.free(a);
  heap_.free(c);
  heap_.free(b);  // merges a+b+c back into one region
  EXPECT_TRUE(heap_.validate());
  EXPECT_GE(heap_.largest_free_block(), before + 3000);
  EXPECT_EQ(heap_.bytes_in_use(), 0u);
  EXPECT_EQ(heap_.block_count(), 1u);
}

TEST_F(SymHeapTest, FreeNullIsNoop) {
  heap_.free(nullptr);
  EXPECT_TRUE(heap_.validate());
}

TEST_F(SymHeapTest, DoubleFreeThrows) {
  void* p = heap_.alloc(64);
  heap_.free(p);
  EXPECT_THROW(heap_.free(p), std::invalid_argument);
}

TEST_F(SymHeapTest, ForeignPointerThrows) {
  int x = 0;
  EXPECT_THROW(heap_.free(&x), std::invalid_argument);
  EXPECT_THROW((void)heap_.allocation_size(&x), std::invalid_argument);
}

TEST_F(SymHeapTest, AllocationSizeReflectsRounding) {
  void* p = heap_.alloc(100);
  EXPECT_EQ(heap_.allocation_size(p), 112u);  // rounded to 16
  heap_.free(p);
}

TEST_F(SymHeapTest, FirstFitReusesFreedBlock) {
  void* a = heap_.alloc(4096);
  void* b = heap_.alloc(64);
  (void)b;
  heap_.free(a);
  void* c = heap_.alloc(4096);
  EXPECT_EQ(c, a);  // same first-fit slot
}

TEST_F(SymHeapTest, ReallocGrowInPlaceWhenPossible) {
  void* p = heap_.alloc(128);
  std::memset(p, 0x5a, 128);
  void* q = heap_.realloc(p, 1024);  // trailing space is free
  EXPECT_EQ(q, p);
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(static_cast<std::byte*>(q)[i], std::byte{0x5a});
  }
  EXPECT_TRUE(heap_.validate());
}

TEST_F(SymHeapTest, ReallocMovesAndPreservesContents) {
  void* p = heap_.alloc(128);
  std::memset(p, 0x77, 128);
  void* barrier = heap_.alloc(64);  // blocks in-place growth
  (void)barrier;
  void* q = heap_.realloc(p, 4096);
  ASSERT_NE(q, nullptr);
  EXPECT_NE(q, p);
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(static_cast<std::byte*>(q)[i], std::byte{0x77});
  }
  EXPECT_TRUE(heap_.validate());
}

TEST_F(SymHeapTest, ReallocShrinkKeepsPointer) {
  void* p = heap_.alloc(4096);
  void* q = heap_.realloc(p, 64);
  EXPECT_EQ(q, p);
  EXPECT_TRUE(heap_.validate());
}

TEST_F(SymHeapTest, ReallocNullActsAsAlloc) {
  void* p = heap_.realloc(nullptr, 64);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(heap_.realloc(p, 0), nullptr);  // acts as free
  EXPECT_EQ(heap_.bytes_in_use(), 0u);
}

TEST_F(SymHeapTest, MemalignHonorsAlignment) {
  for (std::size_t align : {16u, 64u, 256u, 4096u}) {
    void* p = heap_.memalign(align, 100);
    ASSERT_NE(p, nullptr) << align;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
    EXPECT_TRUE(heap_.validate());
  }
}

TEST_F(SymHeapTest, MemalignRejectsBadAlignment) {
  EXPECT_EQ(heap_.memalign(3, 64), nullptr);     // not power of two
  EXPECT_EQ(heap_.memalign(8, 64), nullptr);     // below minimum
  EXPECT_EQ(heap_.memalign(64, 0), nullptr);
}

TEST_F(SymHeapTest, MemalignBlocksAreFreeable) {
  void* p = heap_.memalign(1024, 512);
  ASSERT_NE(p, nullptr);
  heap_.free(p);
  EXPECT_EQ(heap_.bytes_in_use(), 0u);
  EXPECT_TRUE(heap_.validate());
}

TEST(SymHeap, RejectsBadRegion) {
  alignas(64) std::byte small[16];
  EXPECT_THROW(SymHeap(nullptr, 1024), std::invalid_argument);
  EXPECT_THROW(SymHeap(small, sizeof(small)), std::invalid_argument);
  alignas(64) static std::byte misaligned_buf[256];
  EXPECT_THROW(SymHeap(misaligned_buf + 8, 128), std::invalid_argument);
}

// The property shmalloc's symmetry rests on: two heaps driven through an
// identical operation sequence yield identical offsets (paper §IV-A).
TEST(SymHeap, IdenticalSequencesYieldIdenticalOffsets) {
  constexpr std::size_t kBytes = 1 << 18;
  alignas(64) static std::byte s1[kBytes], s2[kBytes];
  SymHeap h1(s1, kBytes), h2(s2, kBytes);
  tshmem_util::Xoshiro256 rng(2024);
  std::vector<std::pair<void*, void*>> live;
  for (int step = 0; step < 500; ++step) {
    if (live.empty() || rng.below(3) != 0) {
      const std::size_t sz = 1 + rng.below(2000);
      void* a = h1.alloc(sz);
      void* b = h2.alloc(sz);
      ASSERT_EQ(a == nullptr, b == nullptr);
      if (a != nullptr) {
        ASSERT_EQ(static_cast<std::byte*>(a) - s1,
                  static_cast<std::byte*>(b) - s2);
        live.emplace_back(a, b);
      }
    } else {
      const std::size_t pick = rng.below(live.size());
      h1.free(live[pick].first);
      h2.free(live[pick].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_TRUE(h1.validate());
  }
}

// Randomized stress: interleaved alloc/free/realloc with content checking
// and invariant validation at every step.
TEST(SymHeap, RandomizedStressKeepsInvariants) {
  constexpr std::size_t kBytes = 1 << 18;
  alignas(64) static std::byte storage[kBytes];
  SymHeap heap(storage, kBytes);
  tshmem_util::Xoshiro256 rng(7);
  struct Live {
    void* p;
    std::size_t size;
    std::uint8_t fill;
  };
  std::vector<Live> live;
  for (int step = 0; step < 2000; ++step) {
    const auto action = rng.below(4);
    if (action <= 1 || live.empty()) {
      const std::size_t sz = 1 + rng.below(3000);
      void* p = heap.alloc(sz);
      if (p != nullptr) {
        const auto fill = static_cast<std::uint8_t>(rng.below(256));
        std::memset(p, fill, sz);
        live.push_back({p, sz, fill});
      }
    } else if (action == 2) {
      const std::size_t pick = rng.below(live.size());
      const Live& l = live[pick];
      for (std::size_t i = 0; i < l.size; ++i) {
        ASSERT_EQ(static_cast<std::uint8_t*>(l.p)[i], l.fill);
      }
      heap.free(l.p);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const std::size_t pick = rng.below(live.size());
      Live& l = live[pick];
      const std::size_t nsz = 1 + rng.below(4000);
      void* q = heap.realloc(l.p, nsz);
      if (q != nullptr) {
        const std::size_t keep = std::min(l.size, nsz);
        for (std::size_t i = 0; i < keep; ++i) {
          ASSERT_EQ(static_cast<std::uint8_t*>(q)[i], l.fill);
        }
        l.p = q;
        l.size = nsz;
        std::memset(q, l.fill, nsz);
      }
    }
    ASSERT_TRUE(heap.validate()) << "step " << step;
  }
  for (const Live& l : live) heap.free(l.p);
  EXPECT_EQ(heap.bytes_in_use(), 0u);
  EXPECT_EQ(heap.block_count(), 1u);
}

}  // namespace
