// Tests for tshmem-check (src/analysis/): vector-clock algebra, detector
// happens-before edges (ctrl messages, quiet, rendezvous, acquire/release,
// atomics), shadow-memory byte masks, report canonicalization and
// determinism, the runtime integration (modes, env overrides, kFail), and
// the bit-identical virtual-time contract with the detector on or off.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "analysis/race.hpp"
#include "analysis/vector_clock.hpp"
#include "sim/config.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"
#include "util/error.hpp"

namespace {

using tshmem::Context;
using tshmem::analysis::AccessKind;
using tshmem::analysis::RaceDetector;
using tshmem::analysis::RaceMode;
using tshmem::analysis::RaceReport;
using tshmem::analysis::Epoch;
using tshmem::analysis::VectorClock;

// ===========================================================================
// VectorClock algebra
// ===========================================================================

TEST(VectorClock, TickJoinCovers) {
  VectorClock a, b;
  a.tick(0);  // a = {1, 0}
  a.tick(0);  // a = {2, 0}
  b.tick(1);  // b = {0, 1}

  EXPECT_EQ(a.at(0), 2u);
  EXPECT_EQ(a.at(1), 0u);
  EXPECT_TRUE(a.covers(Epoch{0, 2}));
  EXPECT_FALSE(a.covers(Epoch{0, 3}));
  EXPECT_FALSE(a.covers(Epoch{1, 1}));

  b.join(a);  // b = {2, 1}
  EXPECT_EQ(b.at(0), 2u);
  EXPECT_EQ(b.at(1), 1u);
  EXPECT_TRUE(b.covers(Epoch{0, 2}));
  EXPECT_TRUE(b.covers(Epoch{1, 1}));

  // join is monotone / idempotent.
  VectorClock c = b;
  c.join(a);
  EXPECT_TRUE(c == b);
}

TEST(VectorClock, EpochOf) {
  VectorClock a;
  a.tick(3);
  a.tick(3);
  const Epoch e = a.epoch_of(3);
  EXPECT_EQ(e.actor, 3);
  EXPECT_EQ(e.clk, 2u);
}

// ===========================================================================
// RaceDetector core semantics (driven directly, no Runtime)
// ===========================================================================

class DetectorTest : public ::testing::Test {
 protected:
  static constexpr int kPes = 2;
  static constexpr std::size_t kBytes = 256;

  void SetUp() override {
    det_ = std::make_unique<RaceDetector>(kPes);
    buf_.assign(kBytes, std::byte{0});
    det_->add_region(0, /*is_static=*/false, buf_.data(), kBytes);
  }

  std::unique_ptr<RaceDetector> det_;
  std::vector<std::byte> buf_;
};

TEST_F(DetectorTest, FreshClocksDoNotCoverFirstAccess) {
  // Epochs start at 1: an all-zero peer view must not cover anyone's
  // first access (otherwise two never-synchronized actors never race).
  EXPECT_EQ(det_->clock_of(0).at(0), 1u);
  EXPECT_FALSE(det_->clock_of(1).covers(Epoch{0, 1}));
}

TEST_F(DetectorTest, UnorderedWriteWriteRaces) {
  det_->on_access(0, false, AccessKind::kWrite, buf_.data(), 8, "w0", 100);
  det_->on_access(1, false, AccessKind::kWrite, buf_.data(), 8, "w1", 200);
  const auto reports = det_->reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].owner_pe, 0);
  EXPECT_EQ(reports[0].bytes, 8u);
}

TEST_F(DetectorTest, ReadReadNeverRaces) {
  det_->on_access(0, false, AccessKind::kRead, buf_.data(), 8, "r0", 100);
  det_->on_access(1, false, AccessKind::kRead, buf_.data(), 8, "r1", 200);
  EXPECT_TRUE(det_->reports().empty());
}

TEST_F(DetectorTest, AtomicAtomicNeverRaces) {
  det_->on_atomic(0, buf_.data(), 8, "shmem_fadd", 100);
  det_->on_atomic(1, buf_.data(), 8, "shmem_fadd", 200);
  EXPECT_TRUE(det_->reports().empty());
}

TEST_F(DetectorTest, AtomicVersusPlainWriteRaces) {
  det_->on_access(0, false, AccessKind::kWrite, buf_.data(), 8, "w", 100);
  det_->on_atomic(1, buf_.data(), 8, "shmem_fadd", 200);
  ASSERT_EQ(det_->reports().size(), 1u);
}

TEST_F(DetectorTest, DisjointBytesInOneGranuleDoNotRace) {
  // Default granule is 8 B; accesses to bytes [0,4) and [4,8) share the
  // granule but not bytes, so the byte mask must suppress the pair.
  det_->on_access(0, false, AccessKind::kWrite, buf_.data(), 4, "w0", 100);
  det_->on_access(1, false, AccessKind::kWrite, buf_.data() + 4, 4, "w1", 200);
  EXPECT_TRUE(det_->reports().empty());
}

TEST_F(DetectorTest, CtrlMessageCreatesEdge) {
  det_->on_access(0, false, AccessKind::kWrite, buf_.data(), 8, "w", 100);
  det_->on_ctrl_send(0, 1, /*queue=*/0, /*tag=*/7);
  det_->on_ctrl_consume(1, 0, /*queue=*/0, /*tag=*/7);
  det_->on_access(1, false, AccessKind::kRead, buf_.data(), 8, "r", 200);
  EXPECT_TRUE(det_->reports().empty());
}

TEST_F(DetectorTest, NbiUnorderedUntilQuiet) {
  // The DMA pseudo-actor's read of the source buffer is unordered with the
  // issuing PE's subsequent writes until on_quiet joins it back.
  det_->on_nbi_issue(0, buf_.data(), buf_.data() + 128, 8, "shmem_put_nbi",
                     100, 500);
  det_->on_access(0, false, AccessKind::kWrite, buf_.data(), 8, "reuse", 200);
  ASSERT_EQ(det_->reports().size(), 1u);
  EXPECT_TRUE(det_->reports()[0].first.via_dma ||
              det_->reports()[0].second.via_dma);
}

TEST_F(DetectorTest, QuietOrdersNbiTraffic) {
  det_->on_nbi_issue(0, buf_.data(), buf_.data() + 128, 8, "shmem_put_nbi",
                     100, 500);
  det_->on_quiet(0);
  det_->on_access(0, false, AccessKind::kWrite, buf_.data(), 8, "reuse", 600);
  EXPECT_TRUE(det_->reports().empty());
}

TEST_F(DetectorTest, RendezvousJoinsAllParticipants) {
  int dummy = 0;  // barrier identity
  det_->on_access(0, false, AccessKind::kWrite, buf_.data(), 8, "w", 100);
  det_->on_rendezvous_arrive(&dummy, 0, 0);
  det_->on_rendezvous_arrive(&dummy, 0, 1);
  det_->on_rendezvous_release(&dummy, 0, 0, kPes);
  det_->on_rendezvous_release(&dummy, 0, 1, kPes);
  det_->on_access(1, false, AccessKind::kRead, buf_.data(), 8, "r", 200);
  EXPECT_TRUE(det_->reports().empty());
}

TEST_F(DetectorTest, ReleaseAcquireOrdersFlagProtocol) {
  // Elemental put publishes on the flag granule; wait_until acquires it.
  std::byte* flag = buf_.data() + 64;
  det_->on_access(0, false, AccessKind::kWrite, buf_.data(), 8, "data", 100);
  det_->on_release(0, flag);
  det_->on_acquire(1, flag);
  det_->on_access(1, false, AccessKind::kRead, buf_.data(), 8, "r", 200);
  EXPECT_TRUE(det_->reports().empty());
}

TEST_F(DetectorTest, HeapFreeForgetsShadowState) {
  det_->on_access(0, false, AccessKind::kWrite, buf_.data(), 8, "w0", 100);
  det_->on_heap_free(buf_.data(), 64);
  det_->on_access(1, false, AccessKind::kWrite, buf_.data(), 8, "w1", 200);
  EXPECT_TRUE(det_->reports().empty());
}

TEST_F(DetectorTest, NonSymmetricAddressesIgnored) {
  int local = 0;
  det_->on_access(0, false, AccessKind::kWrite, &local, 4, "w", 100);
  det_->on_access(1, false, AccessKind::kWrite, &local, 4, "w", 200);
  EXPECT_TRUE(det_->reports().empty());
  EXPECT_EQ(det_->stats().checked_granules, 0u);
}

TEST_F(DetectorTest, GranuleOptionRespected) {
  RaceDetector::Options opts;
  opts.granule = 16;
  RaceDetector d(2, opts);
  EXPECT_EQ(d.granule(), 16u);
}

TEST_F(DetectorTest, ReportOrderCanonical) {
  // The same conflicts observed in a different order must produce the
  // same canonical report list (schedule independence).
  RaceDetector d2(kPes);
  d2.add_region(0, false, buf_.data(), kBytes);

  det_->on_access(0, false, AccessKind::kWrite, buf_.data(), 8, "w", 100);
  det_->on_access(1, false, AccessKind::kRead, buf_.data(), 8, "r", 200);
  det_->on_access(1, false, AccessKind::kWrite, buf_.data() + 32, 8, "w", 300);
  det_->on_access(0, false, AccessKind::kRead, buf_.data() + 32, 8, "r", 400);

  d2.on_access(1, false, AccessKind::kWrite, buf_.data() + 32, 8, "w", 300);
  d2.on_access(0, false, AccessKind::kRead, buf_.data() + 32, 8, "r", 400);
  d2.on_access(0, false, AccessKind::kWrite, buf_.data(), 8, "w", 100);
  d2.on_access(1, false, AccessKind::kRead, buf_.data(), 8, "r", 200);

  const auto a = det_->reports();
  const auto b = d2.reports();
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "report " << i << " differs:\n  "
                              << a[i].describe() << "\n  " << b[i].describe();
  }
}

// ===========================================================================
// Runtime integration: the gallery kernels (bench/ext_races.cpp siblings)
// ===========================================================================

std::vector<RaceReport> run_checked(RaceMode mode,
                                    const std::function<void(Context&)>& fn,
                                    int npes = 2) {
  tshmem::RuntimeOptions opts;
  opts.racecheck = mode;
  tshmem::Runtime rt(tilesim::tile_gx36(), opts);
  rt.run(npes, fn);
  return rt.race_reports();
}

void put_no_barrier(Context& ctx, bool fixed) {
  auto* buf = static_cast<int*>(ctx.shmalloc(64));
  static std::atomic<int> token;
  if (ctx.my_pe() == 0) token.store(0, std::memory_order_relaxed);
  ctx.barrier_all();
  if (ctx.my_pe() == 0) {
    std::vector<int> payload(16, 7);
    ctx.put(buf, payload.data(), 64, 1);
    token.store(1, std::memory_order_release);
  }
  if (fixed) ctx.barrier_all();
  if (ctx.my_pe() == 1) {
    while (token.load(std::memory_order_acquire) == 0) {
    }
    (void)ctx.sym_load(&buf[0]);
  }
  ctx.shfree(buf);
}

TEST(RacecheckRuntime, PutBeforeBarrierFlagged) {
  const auto reports =
      run_checked(RaceMode::kReport, [](Context& c) { put_no_barrier(c, false); });
  ASSERT_FALSE(reports.empty());
  EXPECT_EQ(reports[0].owner_pe, 1);
  EXPECT_FALSE(reports[0].is_static);
  EXPECT_FALSE(reports[0].suggestion.empty());
}

TEST(RacecheckRuntime, PutWithBarrierClean) {
  const auto reports =
      run_checked(RaceMode::kReport, [](Context& c) { put_no_barrier(c, true); });
  EXPECT_TRUE(reports.empty());
}

void nbi_reuse(Context& ctx, bool fixed) {
  auto* dst = static_cast<int*>(ctx.shmalloc(64));
  auto* src = static_cast<int*>(ctx.shmalloc(64));
  ctx.barrier_all();
  if (ctx.my_pe() == 0) {
    ctx.put_nbi(dst, src, 64, 1);
    if (fixed) ctx.quiet();
    for (int i = 0; i < 16; ++i) ctx.sym_store(&src[i], i);
    if (!fixed) ctx.quiet();
  }
  ctx.barrier_all();
  ctx.shfree(src);
  ctx.shfree(dst);
}

TEST(RacecheckRuntime, NbiReuseWithoutQuietFlagged) {
  const auto reports =
      run_checked(RaceMode::kReport, [](Context& c) { nbi_reuse(c, false); });
  ASSERT_FALSE(reports.empty());
  EXPECT_TRUE(reports[0].first.via_dma || reports[0].second.via_dma);
  EXPECT_NE(reports[0].suggestion.find("quiet"), std::string::npos);
}

TEST(RacecheckRuntime, NbiReuseWithQuietClean) {
  const auto reports =
      run_checked(RaceMode::kReport, [](Context& c) { nbi_reuse(c, true); });
  EXPECT_TRUE(reports.empty());
}

void unlocked_add(Context& ctx, bool fixed) {
  auto* counter = static_cast<long*>(ctx.shmalloc(sizeof(long)));
  auto* lock = static_cast<long*>(ctx.shmalloc(sizeof(long)));
  static std::atomic<int> token;
  if (ctx.my_pe() == 0) {
    ctx.sym_store(counter, 0L);
    ctx.sym_store(lock, 0L);
    token.store(1, std::memory_order_release);
  }
  ctx.barrier_all();
  if (ctx.my_pe() == 1 || ctx.my_pe() == 2) {
    while (token.load(std::memory_order_acquire) != ctx.my_pe()) {
    }
    if (fixed) ctx.set_lock(lock);
    long v = 0;
    ctx.get(&v, counter, sizeof(long), 0);
    v += 1;
    ctx.put(counter, &v, sizeof(long), 0);
    if (fixed) ctx.clear_lock(lock);
    token.store(ctx.my_pe() + 1, std::memory_order_release);
  }
  ctx.barrier_all();
  ctx.shfree(lock);
  ctx.shfree(counter);
}

TEST(RacecheckRuntime, UnlockedAccumulateFlagged) {
  const auto reports = run_checked(
      RaceMode::kReport, [](Context& c) { unlocked_add(c, false); }, 3);
  EXPECT_FALSE(reports.empty());
}

TEST(RacecheckRuntime, LockedAccumulateClean) {
  const auto reports = run_checked(
      RaceMode::kReport, [](Context& c) { unlocked_add(c, true); }, 3);
  EXPECT_TRUE(reports.empty());
}

TEST(RacecheckRuntime, ReportsDeterministicAcrossReruns) {
  const auto a = run_checked(
      RaceMode::kReport, [](Context& c) { unlocked_add(c, false); }, 3);
  const auto b = run_checked(
      RaceMode::kReport, [](Context& c) { unlocked_add(c, false); }, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "report " << i << " differs:\n  "
                              << a[i].describe() << "\n  " << b[i].describe();
  }
}

TEST(RacecheckRuntime, FailModeThrowsRaceDetected) {
  tshmem::RuntimeOptions opts;
  opts.racecheck = RaceMode::kFail;
  tshmem::Runtime rt(tilesim::tile_gx36(), opts);
  try {
    rt.run(2, [](Context& c) { put_no_barrier(c, false); });
    FAIL() << "expected Error(kRaceDetected)";
  } catch (const tshmem::Error& e) {
    EXPECT_EQ(e.code(), tshmem::Errc::kRaceDetected);
    EXPECT_NE(std::string(e.what()).find("race"), std::string::npos);
  }
}

TEST(RacecheckRuntime, OffModeCollectsNothing) {
  const auto reports = run_checked(
      RaceMode::kOff, [](Context& c) { put_no_barrier(c, false); });
  EXPECT_TRUE(reports.empty());
}

TEST(RacecheckRuntime, EnvOverridesOptions) {
  ASSERT_EQ(::setenv("TSHMEM_RACECHECK", "fail", 1), 0);
  {
    tshmem::Runtime rt(tilesim::tile_gx36());
    EXPECT_EQ(rt.racecheck_mode(), RaceMode::kFail);
  }
  ASSERT_EQ(::setenv("TSHMEM_RACECHECK", "0", 1), 0);
  {
    tshmem::RuntimeOptions opts;
    opts.racecheck = RaceMode::kReport;  // env wins
    tshmem::Runtime rt(tilesim::tile_gx36(), opts);
    EXPECT_EQ(rt.racecheck_mode(), RaceMode::kOff);
  }
  ASSERT_EQ(::unsetenv("TSHMEM_RACECHECK"), 0);
  {
    tshmem::RuntimeOptions opts;
    opts.racecheck = RaceMode::kReport;
    tshmem::Runtime rt(tilesim::tile_gx36(), opts);
    EXPECT_EQ(rt.racecheck_mode(), RaceMode::kReport);
  }
}

// ===========================================================================
// Bit-identical virtual time with the detector on or off
// ===========================================================================

TEST(RacecheckRuntime, VirtualTimeBitIdenticalOnOrOff) {
  constexpr int kPes = 4;
  const auto run_with = [&](RaceMode mode) {
    tshmem::RuntimeOptions opts;
    opts.racecheck = mode;
    tshmem::Runtime rt(tilesim::tile_gx36(), opts);
    std::vector<std::uint64_t> end_ps(kPes, 0);
    rt.run(kPes, [&](Context& ctx) {
      const int me = ctx.my_pe();
      auto* buf = static_cast<long*>(ctx.shmalloc(64 * sizeof(long)));
      ctx.barrier_all();
      // Exercise every hooked path: puts, gets, _nbi + quiet, elemental
      // put + wait_until, atomics, locks, and a collective.
      long v = me;
      ctx.put(&buf[me], &v, sizeof(long), (me + 1) % kPes);
      ctx.barrier_all();
      ctx.get(&v, &buf[me], sizeof(long), (me + 3) % kPes);
      ctx.put_nbi(&buf[8], &v, sizeof(long), (me + 1) % kPes);
      ctx.quiet();
      ctx.barrier_all();
      (void)ctx.fadd(&buf[16], 1L, 0);
      ctx.set_lock(&buf[24]);
      ctx.clear_lock(&buf[24]);
      if (me == 0) ctx.p(&buf[32], 99L, 1);
      if (me == 1) ctx.wait_until((volatile long*)&buf[32], tshmem::Cmp::kEq,
                                  99L);
      ctx.barrier_all();
      ctx.sym_store(&buf[48], v);
      ctx.barrier_all();
      ctx.reduce(&buf[40], &buf[48], 1, tshmem::RedOp::kSum,
                 tshmem::ActiveSet{0, 0, kPes});
      ctx.barrier_all();
      ctx.shfree(buf);
      end_ps[static_cast<std::size_t>(me)] = ctx.clock().now();
    });
    return end_ps;
  };
  const auto off = run_with(RaceMode::kOff);
  const auto on = run_with(RaceMode::kReport);
  for (int pe = 0; pe < kPes; ++pe) {
    EXPECT_EQ(off[static_cast<std::size_t>(pe)],
              on[static_cast<std::size_t>(pe)])
        << "virtual time diverged on pe " << pe;
    EXPECT_GT(off[static_cast<std::size_t>(pe)], 0u);
  }
}

}  // namespace
