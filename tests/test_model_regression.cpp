// Golden-value regression tests for the calibrated timing model.
//
// Virtual time is fully deterministic, so canonical operations have *exact*
// expected durations. These tests pin them down so an accidental change to
// a calibration constant or a cost path shows up as a test failure rather
// than as a silently drifted figure. When a constant is changed on purpose,
// update the golden values here and the affected rows in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "apps/fft.hpp"
#include "tmc/udn.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::Context;
using tshmem::Runtime;

tilesim::ps_t put_cost(const tilesim::DeviceConfig& cfg, std::size_t bytes) {
  Runtime rt(cfg);
  tilesim::ps_t out = 0;
  rt.run(2, [&](Context& ctx) {
    auto* sym = static_cast<std::byte*>(ctx.shmalloc(bytes));
    ctx.barrier_all();
    ctx.harness_sync_reset();
    if (ctx.my_pe() == 0) {
      ctx.put(sym, sym, bytes, 1);
      out = ctx.clock().now();
    }
    ctx.harness_sync();
    ctx.shfree(sym);
  });
  return out;
}

TEST(ModelRegression, PutCostsGx36) {
  // 40 ns call + 60 ns copy entry + bytes/BW(size):
  // 32 kB at the 3100 MB/s anchor = 10,570,323 ps.
  EXPECT_EQ(put_cost(tilesim::tile_gx36(), 32 * 1024), 100'000u + 10'570'323u);
  // 8 B at the 95 MB/s anchor = 84,211 ps.
  EXPECT_EQ(put_cost(tilesim::tile_gx36(), 8), 100'000u + 84'211u);
}

TEST(ModelRegression, PutCostsPro64) {
  // 55 ns call + 80 ns copy entry + 32 kB at 503.33 MB/s (log-linear
  // between the 8 kB/510 and 64 kB/500 anchors at the 2/3 point).
  const auto cost = put_cost(tilesim::tile_pro64(), 32 * 1024);
  EXPECT_EQ(cost, 135'000u + 65'101'987u);
}

TEST(ModelRegression, UdnWireLatenciesExact) {
  tilesim::Device gx(tilesim::tile_gx36());
  tmc::UdnFabric udn(gx);
  EXPECT_EQ(udn.wire_latency_ps(0, 1, 1), 22'000u);
  EXPECT_EQ(udn.wire_latency_ps(0, 5, 1), 26'000u);
  EXPECT_EQ(udn.wire_latency_ps(0, 35, 1), 31'000u);
  EXPECT_EQ(udn.wire_latency_ps(0, 35, 127), 31'000u + 126'000u);

  tilesim::Device pro(tilesim::tile_pro64());
  tmc::UdnFabric pro_udn(pro);
  EXPECT_EQ(pro_udn.wire_latency_ps(0, 1, 1), 19'429u);
  EXPECT_EQ(pro_udn.wire_latency_ps(0, 8, 1), 18'429u);   // vertical bias
  EXPECT_EQ(pro_udn.wire_latency_ps(0, 9, 1), 21'858u);   // 2 hops + turn
}

TEST(ModelRegression, BarrierLatencyExactGx36) {
  // Linear token over n=8 world set, worst case (start tile): the full
  // 2n-link loop. Links alternate distances; pin the value.
  Runtime rt(tilesim::tile_gx36());
  tilesim::ps_t worst = 0;
  std::mutex mu;
  rt.run(8, [&](Context& ctx) {
    ctx.barrier_all();
    ctx.harness_sync_reset();
    const auto t0 = ctx.clock().now();
    ctx.barrier_all();
    const auto dt = ctx.clock().now() - t0;
    std::scoped_lock lk(mu);
    worst = std::max(worst, dt);
  });
  EXPECT_EQ(worst, 868'000u);
}

TEST(ModelRegression, Fft2dTotalExactGx36) {
  // 64x64 FFT on 4 PEs: compute charges + transposes + barriers are all
  // deterministic; pin the end-to-end figure.
  Runtime rt(tilesim::tile_gx36());
  tilesim::ps_t total = 0;
  rt.run(4, [&](Context& ctx) {
    const auto r = apps::fft2d_run(ctx, 64, /*seed=*/1);
    if (ctx.my_pe() == 0) total = r.timing.total_ps;
  });
  const auto again = [&] {
    tilesim::ps_t t = 0;
    rt.run(4, [&](Context& ctx) {
      const auto r = apps::fft2d_run(ctx, 64, /*seed=*/1);
      if (ctx.my_pe() == 0) t = r.timing.total_ps;
    });
    return t;
  }();
  EXPECT_EQ(total, again);  // reproducible
  // Band check (pinned to +-2% so a legitimate barrier-order difference
  // does not flap, while calibration drift trips).
  EXPECT_NEAR(static_cast<double>(total), 1.310e9, 0.026e9);
}

TEST(ModelRegression, SpinBarrierModelClosedForm) {
  for (const auto* cfg : tilesim::all_devices()) {
    for (int n : {2, 17, 36}) {
      EXPECT_EQ(tmc::SpinBarrier::model_latency_ps(*cfg, n),
                cfg->barrier.spin_base_ps +
                    static_cast<tilesim::ps_t>(n) *
                        cfg->barrier.spin_per_tile_ps);
    }
  }
}

TEST(ModelRegression, ComputeChargesExact) {
  Runtime rt(tilesim::tile_pro64());
  rt.run(1, [](Context& ctx) {
    const auto t0 = ctx.clock().now();
    ctx.charge_int_ops(1000);
    EXPECT_EQ(ctx.clock().now() - t0, 1'429'000u);
    const auto t1 = ctx.clock().now();
    ctx.charge_fp_ops(10);
    EXPECT_EQ(ctx.clock().now() - t1, 900'000u);
  });
}

}  // namespace
