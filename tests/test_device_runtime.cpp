// Tests for the Device/Tile runtime itself: thread binding, clock
// lifecycle, host synchronization primitives, reentrancy guards, and the
// ScopedTimer helper.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "sim/clock.hpp"
#include "sim/device.hpp"

namespace {

using tilesim::Device;
using tilesim::ScopedTimer;
using tilesim::SimClock;
using tilesim::Tile;

TEST(SimClock, AdvanceAndAdvanceTo) {
  SimClock c;
  EXPECT_EQ(c.now(), 0u);
  c.advance(100);
  EXPECT_EQ(c.now(), 100u);
  c.advance_to(50);  // never goes backwards
  EXPECT_EQ(c.now(), 100u);
  c.advance_to(250);
  EXPECT_EQ(c.now(), 250u);
  c.reset();
  EXPECT_EQ(c.now(), 0u);
}

TEST(SimClock, ConcurrentAdvanceToIsMaxMonotone) {
  SimClock c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < 1000; ++i) {
        c.advance_to(static_cast<tilesim::ps_t>(t * 1000 + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.now(), 7999u);
}

TEST(ScopedTimerTest, MeasuresScope) {
  SimClock c;
  tilesim::ps_t elapsed = 0;
  {
    ScopedTimer timer(c, elapsed);
    c.advance(12345);
  }
  EXPECT_EQ(elapsed, 12345u);
}

TEST(DeviceRuntime, BindsOneThreadPerTileWithCurrent) {
  Device device(tilesim::tile_gx36());
  std::mutex mu;
  std::set<std::thread::id> thread_ids;
  device.run(6, [&](Tile& tile) {
    EXPECT_EQ(Device::current(), &tile);
    EXPECT_EQ(&tile.device(), &device);
    std::scoped_lock lk(mu);
    thread_ids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(thread_ids.size(), 6u);
  EXPECT_EQ(Device::current(), nullptr);
}

TEST(DeviceRuntime, ClocksResetOnEveryRun) {
  Device device(tilesim::tile_gx36());
  device.run(2, [](Tile& tile) { tile.clock().advance(999); });
  device.run(2, [](Tile& tile) { EXPECT_EQ(tile.clock().now(), 0u); });
}

TEST(DeviceRuntime, RejectsBadActiveCounts) {
  Device device(tilesim::tile_gx36());
  EXPECT_THROW(device.run(0, [](Tile&) {}), std::invalid_argument);
  EXPECT_THROW(device.run(37, [](Tile&) {}), std::invalid_argument);
  device.run(36, [](Tile&) {});  // full mesh is fine
}

TEST(DeviceRuntime, TileAccessorBounds) {
  Device device(tilesim::tile_pro64());
  EXPECT_NO_THROW((void)device.tile(63));
  EXPECT_THROW((void)device.tile(64), std::out_of_range);
  EXPECT_THROW((void)device.tile(-1), std::out_of_range);
}

TEST(DeviceRuntime, HostSyncOutsideRunThrows) {
  Device device(tilesim::tile_gx36());
  EXPECT_THROW(device.host_sync(), std::logic_error);
}

TEST(DeviceRuntime, SyncAndResetClocksMidRun) {
  Device device(tilesim::tile_gx36());
  device.run(4, [&](Tile& tile) {
    tile.clock().advance(1'000'000 + static_cast<tilesim::ps_t>(tile.id()));
    device.sync_and_reset_clocks();
    EXPECT_EQ(tile.clock().now(), 0u);
  });
}

TEST(DeviceRuntime, ExceptionDoesNotDeadlockHostBarrierUsers) {
  // One tile dies before a host_sync; arrive_and_drop in the runtime keeps
  // the survivors' rendezvous functional.
  Device device(tilesim::tile_gx36());
  EXPECT_THROW(device.run(3,
                          [&](Tile& tile) {
                            if (tile.id() == 1) {
                              throw std::runtime_error("dead tile");
                            }
                            device.host_sync();
                          }),
               std::runtime_error);
  // And the device remains usable.
  std::atomic<int> ran{0};
  device.run(3, [&](Tile&) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(DeviceRuntime, ChargesUseConfiguredCosts) {
  Device device(tilesim::tile_gx36());
  device.run(1, [](Tile& tile) {
    const auto t0 = tile.clock().now();
    tile.charge_int_ops(7);
    tile.charge_fp_ops(3);
    tile.charge_mem_ops(2);
    tile.charge_calls(1);
    const auto& c = tile.device().config().compute;
    EXPECT_EQ(tile.clock().now() - t0,
              7 * c.int_op_ps + 3 * c.fp_op_ps + 2 * c.mem_op_ps + c.call_ps);
  });
}

TEST(DeviceRuntime, RunIsNotReentrant) {
  Device device(tilesim::tile_gx36());
  device.run(1, [&](Tile&) {
    EXPECT_THROW(device.run(1, [](Tile&) {}), std::logic_error);
  });
}

}  // namespace
