// Tests for the CBIR case study (paper §V-B): deterministic synthetic
// database, autocorrelogram properties, query self-retrieval, and PE-count
// invariance of the retrieval result.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/cbir.hpp"
#include "tshmem/runtime.hpp"

namespace {

namespace cbir = apps::cbir;
using tshmem::Context;
using tshmem::Runtime;

TEST(CbirImages, GeneratorIsDeterministic) {
  std::vector<std::uint8_t> a(128 * 128), b(128 * 128);
  cbir::generate_image(a, 128, 128, 77);
  cbir::generate_image(b, 128, 128, 77);
  EXPECT_EQ(a, b);
  cbir::generate_image(b, 128, 128, 78);
  EXPECT_NE(a, b);
}

TEST(CbirImages, SizeMismatchThrows) {
  std::vector<std::uint8_t> buf(10);
  EXPECT_THROW(cbir::generate_image(buf, 128, 128, 1), std::invalid_argument);
}

TEST(CbirFeature, ProbabilitiesAreNormalized) {
  std::vector<std::uint8_t> img(128 * 128);
  cbir::generate_image(img, 128, 128, 5);
  const auto f = cbir::autocorrelogram(img, 128, 128);
  for (const float v : f) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(CbirFeature, UniformImageHasPerfectAutocorrelation) {
  // A constant image: every in-bounds neighbor shares the bin, so the
  // occupied bin's correlogram entries approach 1 (boundary samples count
  // as misses, keeping values just under 1).
  std::vector<std::uint8_t> img(64 * 64, 200);
  const auto f = cbir::autocorrelogram(img, 64, 64);
  const int bin = 200 >> 4;
  for (std::size_t d = 0; d < cbir::kDistances.size(); ++d) {
    EXPECT_GT(f[d * cbir::kBins + bin], 0.85f);
  }
  // Unoccupied bins contribute zero.
  EXPECT_EQ(f[0], 0.0f);
}

TEST(CbirFeature, CheckerboardDecorrelatesAtOddDistances) {
  // A 1-pixel checkerboard: axial neighbors at odd distances always land on
  // the other color, at even distances on the same color. Distances {1,3,5,7}
  // are all odd, so same-bin hits vanish away from the border.
  std::vector<std::uint8_t> img(64 * 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      img[y * 64 + x] = ((x + y) & 1) ? 240 : 0;
    }
  }
  const auto f = cbir::autocorrelogram(img, 64, 64);
  for (std::size_t d = 0; d < cbir::kDistances.size(); ++d) {
    EXPECT_EQ(f[d * cbir::kBins + 0], 0.0f);
    EXPECT_EQ(f[d * cbir::kBins + 15], 0.0f);
  }
}

TEST(CbirFeature, DistanceIsAMetricOnIdenticalInputs) {
  std::vector<std::uint8_t> img(128 * 128);
  cbir::generate_image(img, 128, 128, 9);
  const auto f = cbir::autocorrelogram(img, 128, 128);
  EXPECT_EQ(cbir::feature_distance(f, f), 0.0f);
  std::vector<std::uint8_t> other(128 * 128);
  cbir::generate_image(other, 128, 128, 10);
  const auto g = cbir::autocorrelogram(other, 128, 128);
  EXPECT_GT(cbir::feature_distance(f, g), 0.0f);
  EXPECT_EQ(cbir::feature_distance(f, g), cbir::feature_distance(g, f));
}

TEST(CbirFeature, ChargesComputeModel) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(1, [](Context& ctx) {
    std::vector<std::uint8_t> img(128 * 128);
    cbir::generate_image(img, 128, 128, 3);
    const auto t0 = ctx.clock().now();
    (void)cbir::autocorrelogram(img, 128, 128, &ctx);
    const auto dt = ctx.clock().now() - t0;
    // ~18 ops/pixel at 1 ns: roughly 0.3 ms of device time per image.
    EXPECT_GT(dt, 100'000'000u);   // > 0.1 ms
    EXPECT_LT(dt, 1'000'000'000u); // < 1 ms
  });
}

class CbirQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(CbirQueryTest, QueryRetrievesItselfAtAnyPeCount) {
  const int npes = GetParam();
  cbir::Params p;
  p.images = 60;
  p.query_index = 17;
  Runtime rt(tilesim::tile_gx36());
  int best = -1;
  rt.run(npes, [&](Context& ctx) {
    const auto result = cbir::run_query(ctx, p);
    if (ctx.my_pe() == 0) best = result.best_image;
    // The broadcast verdict is visible on all PEs.
    EXPECT_EQ(result.best_image % p.images, 17 % p.images);
  });
  EXPECT_EQ(best, 17);
}

INSTANTIATE_TEST_SUITE_P(PeSweep, CbirQueryTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(CbirQuery, RankingIsCompleteAndSorted) {
  cbir::Params p;
  p.images = 40;
  p.query_index = 8;
  Runtime rt(tilesim::tile_gx36());
  rt.run(4, [&](Context& ctx) {
    const auto r = cbir::run_query(ctx, p);
    if (ctx.my_pe() == 0) {
      ASSERT_EQ(r.ranking.size(), 40u);
      EXPECT_EQ(r.best_image, 8);
      EXPECT_EQ(r.best_distance, 0.0f);
      const auto top = r.top(5);
      EXPECT_EQ(top.front(), 8);
      // Rescanned head is sorted.
      EXPECT_LE(r.ranking[0].first, r.ranking[1].first);
    }
  });
}

TEST(CbirQuery, TimingsArePopulatedOnRoot) {
  cbir::Params p;
  p.images = 30;
  Runtime rt(tilesim::tile_pro64());
  rt.run(3, [&](Context& ctx) {
    const auto r = cbir::run_query(ctx, p);
    if (ctx.my_pe() == 0) {
      EXPECT_GT(r.extract_ps, 0u);
      EXPECT_GT(r.rank_ps, 0u);
      EXPECT_EQ(r.elapsed_ps, r.extract_ps + r.rank_ps);
    }
  });
}

TEST(CbirQuery, ResultIndependentOfPeCount) {
  cbir::Params p;
  p.images = 50;
  p.query_index = 31;
  p.seed = 1234;
  std::vector<int> results;
  Runtime rt(tilesim::tile_gx36());
  for (int npes : {1, 4, 8}) {
    rt.run(npes, [&](Context& ctx) {
      const auto r = cbir::run_query(ctx, p);
      if (ctx.my_pe() == 0) results.push_back(r.best_image);
    });
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

TEST(CbirQuery, ExtractPhaseScalesRankPhaseDoesNot) {
  // The mechanism behind Fig 14's speedup ceiling: the parallel phase
  // shrinks with PEs, the serial gather/merge/re-rank phase does not.
  cbir::Params p;
  p.images = 160;
  Runtime rt(tilesim::tile_gx36());
  tilesim::ps_t extract2 = 0, extract8 = 0, rank2 = 0, rank8 = 0;
  rt.run(2, [&](Context& ctx) {
    const auto r = cbir::run_query(ctx, p);
    if (ctx.my_pe() == 0) {
      extract2 = r.extract_ps;
      rank2 = r.rank_ps;
    }
  });
  rt.run(8, [&](Context& ctx) {
    const auto r = cbir::run_query(ctx, p);
    if (ctx.my_pe() == 0) {
      extract8 = r.extract_ps;
      rank8 = r.rank_ps;
    }
  });
  EXPECT_LT(extract8 * 3, extract2);                 // ~4x fewer images each
  EXPECT_GT(rank8 * 3, rank2);                       // roughly constant
}

TEST(CbirQuery, ValidatesParams) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(1, [](Context& ctx) {
    cbir::Params p;
    p.images = 0;
    EXPECT_THROW((void)cbir::run_query(ctx, p), std::invalid_argument);
  });
}

}  // namespace
