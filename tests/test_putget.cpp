// Tests for the put/get engine: every dynamic/static pairing of paper
// §IV-B (Figs 6-7), elementals, strided transfers, cost-model ordering, and
// the TILEPro restriction on static transfers.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::Context;
using tshmem::Runtime;

class PutGetTest : public ::testing::Test {
 protected:
  Runtime rt_{tilesim::tile_gx36()};
};

TEST_F(PutGetTest, DynamicDynamicPut) {
  rt_.run(4, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(256);
    for (int i = 0; i < 256; ++i) buf[i] = -1;
    ctx.barrier_all();
    std::vector<int> src(256);
    std::iota(src.begin(), src.end(), ctx.my_pe() * 1000);
    ctx.put(buf, src.data(), 256 * sizeof(int), (ctx.my_pe() + 1) % 4);
    ctx.barrier_all();
    const int writer = (ctx.my_pe() + 3) % 4;
    for (int i = 0; i < 256; ++i) EXPECT_EQ(buf[i], writer * 1000 + i);
    ctx.shfree(buf);
  });
}

TEST_F(PutGetTest, DynamicDynamicGet) {
  rt_.run(4, [](Context& ctx) {
    double* buf = ctx.shmalloc_n<double>(64);
    for (int i = 0; i < 64; ++i) buf[i] = ctx.my_pe() + i * 0.5;
    ctx.barrier_all();
    double* dst = ctx.shmalloc_n<double>(64);
    const int src_pe = (ctx.my_pe() + 2) % 4;
    ctx.get(dst, buf, 64 * sizeof(double), src_pe);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(dst[i], src_pe + i * 0.5);
    ctx.barrier_all();
    ctx.shfree(dst);
    ctx.shfree(buf);
  });
}

TEST_F(PutGetTest, SelfPutAndGet) {
  rt_.run(2, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(8);
    int local[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    ctx.put(buf, local, sizeof(local), ctx.my_pe());
    int back[8] = {};
    ctx.get(back, buf, sizeof(back), ctx.my_pe());
    EXPECT_EQ(0, std::memcmp(local, back, sizeof(local)));
    ctx.barrier_all();
    ctx.shfree(buf);
  });
}

TEST_F(PutGetTest, NonSymmetricSourceForPutIsAllowed) {
  // Paper §IV-B2: "any source variable may be used (symmetric or otherwise)
  // if the target variable is dynamic."
  rt_.run(2, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(4);
    ctx.barrier_all();
    int stack_src[4] = {9, 8, 7, 6};
    ctx.put(buf, stack_src, sizeof(stack_src), 1 - ctx.my_pe());
    ctx.barrier_all();
    EXPECT_EQ(buf[0], 9);
    EXPECT_EQ(buf[3], 6);
    ctx.shfree(buf);
  });
}

TEST_F(PutGetTest, NonSymmetricRemoteTargetThrows) {
  rt_.run(2, [](Context& ctx) {
    int stack_target[4];
    int src[4] = {};
    if (ctx.my_pe() == 0) {
      EXPECT_THROW(ctx.put(stack_target, src, sizeof(src), 1),
                   std::invalid_argument);
      EXPECT_THROW(ctx.get(src, stack_target, sizeof(src), 1),
                   std::invalid_argument);
    }
    ctx.barrier_all();
  });
}

TEST_F(PutGetTest, PeOutOfRangeThrows) {
  rt_.run(2, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(1);
    int v = 0;
    EXPECT_THROW(ctx.put(buf, &v, 4, 5), std::out_of_range);
    EXPECT_THROW(ctx.get(&v, buf, 4, -1), std::out_of_range);
    ctx.barrier_all();
    ctx.shfree(buf);
  });
}

TEST_F(PutGetTest, ZeroByteTransferIsNoop) {
  rt_.run(2, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(1);
    *buf = 77;
    ctx.barrier_all();
    ctx.put(buf, nullptr, 0, 1 - ctx.my_pe());
    ctx.barrier_all();
    EXPECT_EQ(*buf, 77);
    ctx.shfree(buf);
  });
}

// --- static symmetric paths (Fig 7, TILE-Gx only) ----------------------------

TEST_F(PutGetTest, StaticDynamicPutViaInterrupt) {
  // Put into a remote *static* target from a dynamic source: the remote
  // tile services it over a UDN interrupt.
  rt_.run(2, [](Context& ctx) {
    int* stat = ctx.static_sym<int>("sd_put_target", 16);
    int* dyn = ctx.shmalloc_n<int>(16);
    for (int i = 0; i < 16; ++i) {
      stat[i] = -1;
      dyn[i] = ctx.my_pe() * 100 + i;
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      ctx.put(stat, dyn, 16 * sizeof(int), 1);
      EXPECT_EQ(ctx.runtime().interrupts().serviced(1), 1u);
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      for (int i = 0; i < 16; ++i) EXPECT_EQ(stat[i], i);  // PE 0's dyn
    } else {
      for (int i = 0; i < 16; ++i) EXPECT_EQ(stat[i], -1);  // untouched
    }
    ctx.barrier_all();
    ctx.shfree(dyn);
  });
}

TEST_F(PutGetTest, DynamicStaticGetViaInterrupt) {
  // Get from a remote static source into my dynamic target.
  rt_.run(2, [](Context& ctx) {
    int* stat = ctx.static_sym<int>("ds_get_source", 8);
    int* dyn = ctx.shmalloc_n<int>(8);
    for (int i = 0; i < 8; ++i) stat[i] = ctx.my_pe() * 10 + i;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      ctx.get(dyn, stat, 8 * sizeof(int), 1);
      for (int i = 0; i < 8; ++i) EXPECT_EQ(dyn[i], 10 + i);
    }
    ctx.barrier_all();
    ctx.shfree(dyn);
  });
}

TEST_F(PutGetTest, StaticStaticViaBounceBuffer) {
  rt_.run(2, [](Context& ctx) {
    int* stat = ctx.static_sym<int>("ss_buf", 32);
    for (int i = 0; i < 32; ++i) stat[i] = ctx.my_pe() * 1000 + i;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      // Put my static array into PE 1's static array.
      ctx.put(stat, stat, 32 * sizeof(int), 1);
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      for (int i = 0; i < 32; ++i) EXPECT_EQ(stat[i], i);  // PE 0's values
    }
    ctx.barrier_all();
    // And a static-static get in the other direction.
    if (ctx.my_pe() == 0) {
      int* dst = ctx.static_sym<int>("ss_buf2", 32);
      ctx.get(dst, stat, 32 * sizeof(int), 1);
      for (int i = 0; i < 32; ++i) EXPECT_EQ(dst[i], i);
    } else {
      (void)ctx.static_sym<int>("ss_buf2", 32);
    }
    ctx.barrier_all();
  });
}

TEST_F(PutGetTest, StaticLocalSelfTransferNeedsNoInterrupt) {
  rt_.run(2, [](Context& ctx) {
    int* stat = ctx.static_sym<int>("self_static", 4);
    int local[4] = {5, 6, 7, 8};
    ctx.put(stat, local, sizeof(local), ctx.my_pe());
    EXPECT_EQ(stat[2], 7);
    EXPECT_EQ(ctx.runtime().interrupts().serviced(ctx.my_pe()), 0u);
    ctx.barrier_all();
  });
}

TEST(PutGetPro64, StaticTransfersUnsupported) {
  // Paper §IV-B2: "Static symmetric variable transfers in TSHMEM are not
  // currently supported on the TILEPro architecture due to lack of support
  // for UDN interrupts."
  Runtime rt(tilesim::tile_pro64());
  rt.run(2, [](Context& ctx) {
    int* stat = ctx.static_sym<int>("pro_static", 4);
    int* dyn = ctx.shmalloc_n<int>(4);
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      EXPECT_THROW(ctx.put(stat, dyn, 16, 1), std::runtime_error);
      EXPECT_THROW(ctx.get(dyn, stat, 16, 1), std::runtime_error);
      // Dynamic transfers still work fine.
      ctx.put(dyn, dyn, 16, 1);
    }
    ctx.barrier_all();
    ctx.shfree(dyn);
  });
}

// --- elementals --------------------------------------------------------------

TEST_F(PutGetTest, ElementalRoundTripAllTypes) {
  rt_.run(2, [](Context& ctx) {
    struct Syms {
      short* s;
      int* i;
      long* l;
      long long* ll;
      float* f;
      double* d;
    } syms{ctx.shmalloc_n<short>(1), ctx.shmalloc_n<int>(1),
           ctx.shmalloc_n<long>(1),  ctx.shmalloc_n<long long>(1),
           ctx.shmalloc_n<float>(1), ctx.shmalloc_n<double>(1)};
    ctx.barrier_all();
    const int other = 1 - ctx.my_pe();
    ctx.p(syms.s, static_cast<short>(7), other);
    ctx.p(syms.i, 42, other);
    ctx.p(syms.l, 43L, other);
    ctx.p(syms.ll, 44LL, other);
    ctx.p(syms.f, 1.5f, other);
    ctx.p(syms.d, 2.5, other);
    ctx.barrier_all();
    EXPECT_EQ(*syms.s, 7);
    EXPECT_EQ(*syms.i, 42);
    EXPECT_EQ(*syms.l, 43L);
    EXPECT_EQ(*syms.ll, 44LL);
    EXPECT_EQ(*syms.f, 1.5f);
    EXPECT_EQ(*syms.d, 2.5);
    EXPECT_EQ(ctx.g(syms.i, other), 42);
    EXPECT_EQ(ctx.g(syms.d, other), 2.5);
    ctx.barrier_all();
    ctx.shfree(syms.d);
    ctx.shfree(syms.f);
    ctx.shfree(syms.ll);
    ctx.shfree(syms.l);
    ctx.shfree(syms.i);
    ctx.shfree(syms.s);
  });
}

// --- strided -----------------------------------------------------------------

TEST_F(PutGetTest, StridedIputScattersCorrectly) {
  rt_.run(2, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(32);
    for (int i = 0; i < 32; ++i) buf[i] = 0;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      int src[8];
      for (int i = 0; i < 8; ++i) src[i] = i + 1;
      // Every 4th element on the target, contiguous source.
      ctx.iput(buf, src, 4, 1, 8, 1);
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(buf[i * 4], i + 1);
        EXPECT_EQ(buf[i * 4 + 1], 0);
      }
    }
    ctx.barrier_all();
    ctx.shfree(buf);
  });
}

TEST_F(PutGetTest, StridedIgetGathersCorrectly) {
  rt_.run(2, [](Context& ctx) {
    double* buf = ctx.shmalloc_n<double>(24);
    for (int i = 0; i < 24; ++i) buf[i] = ctx.my_pe() * 100.0 + i;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      double dst[8] = {};
      ctx.iget(dst, buf, 1, 3, 8, 1);  // every 3rd remote element
      for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], 100.0 + i * 3);
    }
    ctx.barrier_all();
    ctx.shfree(buf);
  });
}

// --- cost-model ordering (Fig 6/7 relationships) -----------------------------

TEST_F(PutGetTest, VirtualCostsOrderAcrossPaths) {
  rt_.run(2, [](Context& ctx) {
    constexpr std::size_t kBytes = 64 * 1024;
    int* dyn = ctx.shmalloc_n<int>(kBytes / sizeof(int));
    int* stat = ctx.static_sym<int>("cost_static", kBytes / sizeof(int));
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      auto timed = [&](auto&& fn) {
        const auto t0 = ctx.clock().now();
        fn();
        return ctx.clock().now() - t0;
      };
      const auto t_dd = timed([&] { ctx.put(dyn, dyn, kBytes, 1); });
      const auto t_ds = timed([&] { ctx.put(dyn, stat, kBytes, 1); });
      const auto t_sd = timed([&] { ctx.put(stat, dyn, kBytes, 1); });
      const auto t_ss = timed([&] { ctx.put(stat, stat, kBytes, 1); });
      // Fig 7: dynamic-target puts are equally fast regardless of source;
      // static-target puts pay the interrupt; static-static pays the
      // interrupt plus a bounce-buffer copy.
      EXPECT_NEAR(static_cast<double>(t_ds), static_cast<double>(t_dd),
                  0.15 * static_cast<double>(t_dd));
      EXPECT_GT(t_sd, t_dd);
      EXPECT_GT(t_ss, t_sd);
    }
    ctx.barrier_all();
    ctx.shfree(dyn);
  });
}

// Parameterized sweep: put/get round trips preserve data across sizes
// (including non-power-of-two and sub-word sizes).
class TransferSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TransferSizeTest, RoundTripPreservesBytes) {
  const std::size_t bytes = GetParam();
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [&](Context& ctx) {
    auto* buf = static_cast<std::uint8_t*>(ctx.shmalloc(bytes + 16));
    std::vector<std::uint8_t> src(bytes);
    for (std::size_t i = 0; i < bytes; ++i) {
      src[i] = static_cast<std::uint8_t>((i * 131 + ctx.my_pe()) & 0xff);
    }
    ctx.barrier_all();
    ctx.put(buf, src.data(), bytes, 1 - ctx.my_pe());
    ctx.barrier_all();
    std::vector<std::uint8_t> back(bytes);
    ctx.get(back.data(), buf, bytes, ctx.my_pe());
    for (std::size_t i = 0; i < bytes; ++i) {
      ASSERT_EQ(back[i],
                static_cast<std::uint8_t>((i * 131 + (1 - ctx.my_pe())) & 0xff));
    }
    ctx.barrier_all();
    ctx.shfree(buf);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransferSizeTest,
                         ::testing::Values(1, 2, 3, 7, 8, 13, 64, 100, 1024,
                                           4096, 65537, 1 << 20));

}  // namespace
