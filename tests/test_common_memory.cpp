// Tests for TMC common memory: mapping semantics, the address classifier,
// homing attributes, free-list reuse, and the tmc allocator facade.
#include <gtest/gtest.h>

#include <cstring>

#include "tmc/alloc.hpp"
#include "tmc/common_memory.hpp"

namespace {

using tilesim::Homing;
using tmc::AllocAttr;
using tmc::Allocator;
using tmc::CommonMemory;

TEST(CommonMemory, MapAndLookup) {
  CommonMemory cm(1 << 20);
  void* p = cm.map("seg", 4096, Homing::kHashForHome, 3);
  ASSERT_NE(p, nullptr);
  const auto info = cm.lookup("seg");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->addr, p);
  EXPECT_EQ(info->bytes, 4096u);
  EXPECT_EQ(info->creator_tile, 3);
  EXPECT_EQ(cm.mapping_count(), 1u);
}

TEST(CommonMemory, AnyTileCanCreateVisibleMappings) {
  // The TMC property the paper highlights: mappings created by any process
  // become visible to all others (§III-B).
  CommonMemory cm(1 << 20);
  void* by_tile5 = cm.map("from5", 128, Homing::kLocal, 5);
  const auto seen = cm.lookup("from5");
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->addr, by_tile5);
  EXPECT_EQ(seen->creator_tile, 5);
}

TEST(CommonMemory, ContainsClassifiesPointers) {
  CommonMemory cm(1 << 16);
  void* p = cm.map("a", 256, Homing::kHashForHome, 0);
  EXPECT_TRUE(cm.contains(p));
  EXPECT_TRUE(cm.contains(static_cast<std::byte*>(p) + 255));
  int on_stack = 0;
  EXPECT_FALSE(cm.contains(&on_stack));
  EXPECT_FALSE(cm.contains(nullptr));
}

TEST(CommonMemory, HomingOfMapping) {
  CommonMemory cm(1 << 16);
  void* a = cm.map("local", 256, Homing::kLocal, 0);
  void* b = cm.map("remote", 256, Homing::kRemote, 0);
  EXPECT_EQ(cm.homing_of(a), Homing::kLocal);
  EXPECT_EQ(cm.homing_of(static_cast<std::byte*>(a) + 100), Homing::kLocal);
  EXPECT_EQ(cm.homing_of(b), Homing::kRemote);
  int other = 0;
  EXPECT_EQ(cm.homing_of(&other), Homing::kHashForHome);  // device default
}

TEST(CommonMemory, DuplicateNameThrows) {
  CommonMemory cm(1 << 16);
  (void)cm.map("dup", 64, Homing::kHashForHome, 0);
  EXPECT_THROW((void)cm.map("dup", 64, Homing::kHashForHome, 0),
               std::invalid_argument);
}

TEST(CommonMemory, ZeroBytesThrows) {
  CommonMemory cm(1 << 16);
  EXPECT_THROW((void)cm.map("z", 0, Homing::kHashForHome, 0),
               std::invalid_argument);
}

TEST(CommonMemory, ExhaustionThrowsBadAlloc) {
  CommonMemory cm(4096);
  (void)cm.map("big", 4096, Homing::kHashForHome, 0);
  EXPECT_THROW((void)cm.map("more", 64, Homing::kHashForHome, 0),
               std::bad_alloc);
}

TEST(CommonMemory, UnmapReturnsSpaceAndCoalesces) {
  CommonMemory cm(64 * 1024);
  (void)cm.map("a", 16 * 1024, Homing::kHashForHome, 0);
  (void)cm.map("b", 16 * 1024, Homing::kHashForHome, 0);
  (void)cm.map("c", 16 * 1024, Homing::kHashForHome, 0);
  cm.unmap("a");
  cm.unmap("b");  // must coalesce with a's block
  void* big = cm.map("big", 32 * 1024, Homing::kHashForHome, 0);
  EXPECT_NE(big, nullptr);
}

TEST(CommonMemory, UnmapUnknownThrows) {
  CommonMemory cm(1 << 16);
  EXPECT_THROW(cm.unmap("nothing"), std::invalid_argument);
}

TEST(CommonMemory, MappingsAre64ByteAligned) {
  CommonMemory cm(1 << 16);
  for (int i = 0; i < 5; ++i) {
    void* p = cm.map("seg" + std::to_string(i), 100, Homing::kHashForHome, 0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  }
}

TEST(CommonMemory, BytesMappedAccounting) {
  CommonMemory cm(1 << 16);
  EXPECT_EQ(cm.bytes_mapped(), 0u);
  (void)cm.map("a", 100, Homing::kHashForHome, 0);  // rounds to 128
  EXPECT_EQ(cm.bytes_mapped(), 128u);
  cm.unmap("a");
  EXPECT_EQ(cm.bytes_mapped(), 0u);
}

TEST(CommonMemory, DataSurvivesOtherMappings) {
  CommonMemory cm(1 << 16);
  auto* p = static_cast<std::byte*>(cm.map("keep", 256, Homing::kLocal, 0));
  std::memset(p, 0xab, 256);
  (void)cm.map("other", 256, Homing::kLocal, 0);
  cm.unmap("other");
  for (int i = 0; i < 256; ++i) EXPECT_EQ(p[i], std::byte{0xab});
}

// --- Allocator facade --------------------------------------------------------

TEST(Allocator, SharedAllocationsLiveInCommonMemory) {
  CommonMemory cm(1 << 16);
  Allocator alloc(cm);
  AllocAttr shared;
  shared.shared = true;
  void* p = alloc.alloc(shared, 512, 2);
  EXPECT_TRUE(alloc.is_shared(p));
  EXPECT_TRUE(cm.contains(p));
  alloc.free(p);
  EXPECT_EQ(alloc.live_allocations(), 0u);
}

TEST(Allocator, PrivateAllocationsAreNotShared) {
  CommonMemory cm(1 << 16);
  Allocator alloc(cm);
  AllocAttr priv;
  priv.shared = false;
  void* p = alloc.alloc(priv, 512, 0);
  EXPECT_FALSE(alloc.is_shared(p));
  alloc.free(p);
}

TEST(Allocator, HomingAttributePropagates) {
  CommonMemory cm(1 << 16);
  Allocator alloc(cm);
  AllocAttr attr;
  attr.shared = true;
  attr.homing = Homing::kRemote;
  void* p = alloc.alloc(attr, 128, 0);
  EXPECT_EQ(cm.homing_of(p), Homing::kRemote);
  alloc.free(p);
}

TEST(Allocator, FreeOfForeignPointerThrows) {
  CommonMemory cm(1 << 16);
  Allocator alloc(cm);
  int x = 0;
  EXPECT_THROW(alloc.free(&x), std::invalid_argument);
  alloc.free(nullptr);  // no-op
}

TEST(Allocator, ZeroBytesThrows) {
  CommonMemory cm(1 << 16);
  Allocator alloc(cm);
  EXPECT_THROW((void)alloc.alloc(AllocAttr{}, 0, 0), std::invalid_argument);
}

}  // namespace
