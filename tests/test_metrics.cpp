// Tests for the virtual-time metrics subsystem (obs/): instruments,
// lock-sharded registry under concurrency, log2 bucket edges, the metrics
// JSON schema round-trip, the Chrome/Perfetto trace export, and the
// zero-virtual-cost contract — metrics on vs off must produce bit-identical
// virtual-time results.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/exporters.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/quantiles.hpp"
#include "obs/scoped_timer.hpp"
#include "sim/clock.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using obs::Counter;
using obs::Gauge;
using obs::JsonValue;
using obs::Log2Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

// ===========================================================================
// Instruments
// ===========================================================================

TEST(Metrics, CounterAndGauge) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.set(100);
  g.add(-30);
  EXPECT_EQ(g.value(), 70);
}

TEST(Metrics, HistogramBucketEdges) {
  // Bucket index is the sample's bit width: 0 -> bucket 0, 1 -> bucket 1,
  // [2,3] -> bucket 2, [4,7] -> bucket 3, ...
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3);
  EXPECT_EQ(Log2Histogram::bucket_of(7), 3);
  EXPECT_EQ(Log2Histogram::bucket_of(8), 4);
  EXPECT_EQ(Log2Histogram::bucket_of((1ull << 32) - 1), 32);
  EXPECT_EQ(Log2Histogram::bucket_of(1ull << 32), 33);
  EXPECT_EQ(Log2Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            64);

  // bucket_lower/upper are the inclusive range; bucket_of is consistent
  // with them at both edges of every bucket.
  EXPECT_EQ(Log2Histogram::bucket_lower(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_upper(0), 0u);
  for (int b = 1; b < Log2Histogram::kBuckets; ++b) {
    const auto lo = Log2Histogram::bucket_lower(b);
    const auto hi = Log2Histogram::bucket_upper(b);
    EXPECT_EQ(lo, 1ull << (b - 1));
    EXPECT_EQ(Log2Histogram::bucket_of(lo), b) << "bucket " << b;
    EXPECT_EQ(Log2Histogram::bucket_of(hi), b) << "bucket " << b;
    if (b >= 2) {
      EXPECT_EQ(Log2Histogram::bucket_of(lo - 1), b - 1);
    }
  }
}

TEST(Metrics, HistogramRecordAggregates) {
  Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.max(), 0u);
  for (const std::uint64_t s : {0ull, 1ull, 3ull, 4ull, 1000ull}) h.record(s);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1008u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.bucket_count(0), 1u);   // 0
  EXPECT_EQ(h.bucket_count(1), 1u);   // 1
  EXPECT_EQ(h.bucket_count(2), 1u);   // 3
  EXPECT_EQ(h.bucket_count(3), 1u);   // 4
  EXPECT_EQ(h.bucket_count(10), 1u);  // 1000 in [512, 1023]
}

// ===========================================================================
// Registry
// ===========================================================================

TEST(Metrics, RegistryReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.calls", 0);
  Counter& b = reg.counter("x.calls", 0);
  EXPECT_EQ(&a, &b);
  Counter& other_pe = reg.counter("x.calls", 1);
  EXPECT_NE(&a, &other_pe);
  EXPECT_EQ(reg.metric_count(), 2u);
}

TEST(Metrics, RegistryKindMismatchThrows) {
  MetricsRegistry reg;
  (void)reg.counter("m", 0);
  EXPECT_THROW((void)reg.gauge("m", 0), std::logic_error);
  EXPECT_THROW((void)reg.histogram("m", 0), std::logic_error);
}

TEST(Metrics, RegistryConcurrentRegistrationAndUpdate) {
  // Many PE threads hammer the same names concurrently — registration must
  // not lose cells, and per-(name, pe) counts must be exact.
  MetricsRegistry reg(8);
  constexpr int kThreads = 16;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int pe = 0; pe < kThreads; ++pe) {
    threads.emplace_back([&reg, pe] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter("conc.calls", pe).inc();
        reg.counter("conc.shared", /*pe=*/-1).inc();
        reg.histogram("conc.lat", pe).record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int pe = 0; pe < kThreads; ++pe) {
    EXPECT_EQ(reg.counter("conc.calls", pe).value(),
              static_cast<std::uint64_t>(kIters));
    EXPECT_EQ(reg.histogram("conc.lat", pe).count(),
              static_cast<std::uint64_t>(kIters));
  }
  EXPECT_EQ(reg.counter("conc.shared", -1).value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  // conc.calls x16, conc.lat x16, conc.shared x1
  EXPECT_EQ(reg.metric_count(), 33u);
}

TEST(Metrics, SnapshotIsSortedByNameThenPe) {
  MetricsRegistry reg;
  reg.counter("b", 1).inc();
  reg.counter("b", 0).inc();
  reg.counter("a", 2).inc();
  reg.gauge("g", 0).set(-5);
  const MetricsSnapshot snap = reg.snapshot("gx36", 4);
  EXPECT_EQ(snap.device, "gx36");
  EXPECT_EQ(snap.npes, 4);
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[1].name, "b");
  EXPECT_EQ(snap.counters[1].pe, 0);
  EXPECT_EQ(snap.counters[2].pe, 1);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -5);
}

// ===========================================================================
// Scoped timer
// ===========================================================================

TEST(Metrics, ScopedVtTimerMeasuresWithoutAdvancing) {
  tilesim::SimClock clock;
  clock.advance(500);
  Log2Histogram hist;
  Counter calls;
  {
    obs::ScopedVtTimer t(clock, &hist, &calls);
    clock.advance(1000);
  }
  EXPECT_EQ(calls.value(), 1u);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.sum(), 1000u);
  EXPECT_EQ(clock.now(), 1500u);  // the timer itself charged nothing

  // Null histogram: fully disabled, counter untouched.
  {
    obs::ScopedVtTimer t(clock, nullptr, &calls);
    clock.advance(7);
  }
  EXPECT_EQ(calls.value(), 1u);
  EXPECT_EQ(hist.count(), 1u);
}

// ===========================================================================
// JSON exporters
// ===========================================================================

TEST(Metrics, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("\n\t"), "\\n\\t");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Metrics, MetricsJsonSchemaRoundTrip) {
  MetricsRegistry reg;
  reg.counter("shmem.put.calls", 0).add(7);
  reg.counter("shmem.put.calls", 1).add(9);
  reg.gauge("shmem.heap.bytes_in_use", 0).set(4096);
  reg.histogram("shmem.put.latency_ps", 0).record(1000);
  reg.histogram("shmem.put.latency_ps", 0).record(3000);

  std::ostringstream os;
  obs::write_metrics_json(os, reg.snapshot("gx36", 2));

  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.at("schema").as_string(), obs::kMetricsSchema);
  const JsonValue& run = doc.at("runs").at(0);
  EXPECT_EQ(run.at("device").as_string(), "gx36");
  EXPECT_EQ(run.at("npes").as_int(), 2);

  const auto& counters = run.at("counters").as_array();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].at("name").as_string(), "shmem.put.calls");
  EXPECT_EQ(counters[0].at("pe").as_int(), 0);
  EXPECT_EQ(counters[0].at("value").as_uint(), 7u);
  EXPECT_EQ(counters[1].at("pe").as_int(), 1);
  EXPECT_EQ(counters[1].at("value").as_uint(), 9u);

  const auto& gauges = run.at("gauges").as_array();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].at("value").as_int(), 4096);

  const auto& hists = run.at("histograms").as_array();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].at("count").as_uint(), 2u);
  EXPECT_EQ(hists[0].at("sum").as_uint(), 4000u);
  EXPECT_EQ(hists[0].at("min").as_uint(), 1000u);
  EXPECT_EQ(hists[0].at("max").as_uint(), 3000u);
  // 1000 -> bucket 10, 3000 -> bucket 12; only non-empty buckets emitted.
  const auto& buckets = hists[0].at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].at("log2").as_int(), 10);
  EXPECT_EQ(buckets[0].at("count").as_uint(), 1u);
  EXPECT_EQ(buckets[1].at("log2").as_int(), 12);
}

TEST(Metrics, MetricsJsonIsByteStableAcrossIdenticalSnapshots) {
  const auto dump = [] {
    MetricsRegistry reg;
    reg.counter("z", 1).inc();
    reg.counter("a", 0).add(3);
    reg.histogram("h", 0).record(42);
    std::ostringstream os;
    obs::write_metrics_json(os, reg.snapshot("pro64", 2));
    return os.str();
  };
  EXPECT_EQ(dump(), dump());
}

TEST(Metrics, ChromeTracePerfettoSmoke) {
  // The exported document must be loadable by Perfetto/chrome://tracing:
  // an object with a "traceEvents" array of "X" complete events (us-domain
  // ts/dur, pid/tid ints) plus "M" process/thread metadata.
  std::vector<tilesim::TraceEvent> events;
  events.push_back({0, tilesim::TraceKind::kCompute, 0, 2'000'000, "fft row"});
  events.push_back(
      {1, tilesim::TraceKind::kCopy, 500'000, 1'500'000, "put \"x\""});
  std::ostringstream os;
  obs::write_chrome_trace_json(os, events, "gx36");

  const JsonValue doc = JsonValue::parse(os.str());
  const auto& trace_events = doc.at("traceEvents").as_array();
  int complete = 0, metadata = 0;
  bool saw_process_name = false;
  for (const JsonValue& e : trace_events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "X") {
      ++complete;
      EXPECT_GE(e.at("dur").as_double(), 0.0);
      EXPECT_TRUE(e.contains("ts"));
      EXPECT_TRUE(e.contains("pid"));
      EXPECT_TRUE(e.contains("tid"));
      EXPECT_TRUE(e.contains("cat"));
    } else if (ph == "M") {
      ++metadata;
      saw_process_name |= e.at("name").as_string() == "process_name";
    }
  }
  EXPECT_EQ(complete, 2);
  EXPECT_GE(metadata, 1);
  EXPECT_TRUE(saw_process_name);
  // ps -> us: the 2'000'000 ps compute span is 2 us.
  for (const JsonValue& e : trace_events) {
    if (e.at("ph").as_string() == "X" &&
        e.at("name").as_string() == "fft row") {
      EXPECT_DOUBLE_EQ(e.at("dur").as_double(), 2.0);
    }
  }
}

// ===========================================================================
// Runtime integration
// ===========================================================================

// A workload touching every instrumented subsystem: puts, gets, barriers,
// a broadcast, a reduction, atomics, locks, and heap churn.
void workload(tshmem::Context& ctx, std::vector<std::uint64_t>* end_ps) {
  const int npes = ctx.num_pes();
  auto* buf = ctx.shmalloc_n<std::uint32_t>(256);
  auto* acc = ctx.shmalloc_n<std::int64_t>(1);
  auto* sum = ctx.shmalloc_n<std::int64_t>(1);
  acc[0] = 0;
  ctx.barrier_all();
  ctx.put(buf, buf, 256 * sizeof(std::uint32_t), (ctx.my_pe() + 1) % npes);
  ctx.get(buf, buf, 128 * sizeof(std::uint32_t), (ctx.my_pe() + 2) % npes);
  ctx.barrier_all();
  ctx.add(acc, std::int64_t{1}, 0);
  ctx.broadcast(buf, buf, 64 * sizeof(std::uint32_t), 0, ctx.world());
  ctx.reduce(sum, acc, 1, tshmem::RedOp::kSum, ctx.world());
  ctx.barrier_all();
  ctx.shfree(sum);
  ctx.shfree(acc);
  ctx.shfree(buf);
  (*end_ps)[static_cast<std::size_t>(ctx.my_pe())] = ctx.clock().now();
}

TEST(Metrics, RuntimeCollectsAllSubsystems) {
  tshmem::RuntimeOptions opts;
  opts.metrics = true;
  tshmem::Runtime rt(tilesim::tile_gx36(), opts);
  ASSERT_TRUE(rt.metrics_enabled());
  constexpr int kPes = 4;
  std::vector<std::uint64_t> end_ps(kPes, 0);
  rt.run(kPes, [&](tshmem::Context& ctx) { workload(ctx, &end_ps); });

  const MetricsSnapshot snap = rt.metrics();
  EXPECT_EQ(snap.device, "gx36");
  EXPECT_EQ(snap.npes, kPes);

  const auto counter = [&](const std::string& name,
                           int pe) -> std::uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == name && c.pe == pe) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name << " pe=" << pe;
    return 0;
  };
  const auto hist_count = [&](const std::string& name,
                              int pe) -> std::uint64_t {
    for (const auto& h : snap.histograms) {
      if (h.name == name && h.pe == pe) return h.count;
    }
    ADD_FAILURE() << "missing histogram " << name << " pe=" << pe;
    return 0;
  };

  for (int pe = 0; pe < kPes; ++pe) {
    EXPECT_EQ(counter("shmem.put.calls", pe), 1u) << "pe " << pe;
    EXPECT_EQ(counter("shmem.put.bytes", pe), 1024u);
    // Collectives issue further gets/barriers internally, so these are
    // lower bounds: at least the workload's own one get and three barriers.
    EXPECT_GE(counter("shmem.get.calls", pe), 1u);
    EXPECT_GE(counter("shmem.barrier.calls", pe), 3u);
    EXPECT_EQ(counter("shmem.broadcast.calls", pe), 1u);
    EXPECT_EQ(counter("shmem.reduce.calls", pe), 1u);
    EXPECT_EQ(counter("shmem.atomic.calls", pe), 1u);
    EXPECT_EQ(counter("shmem.heap.alloc.calls", pe), 3u);
    EXPECT_EQ(counter("shmem.heap.free.calls", pe), 3u);
    EXPECT_EQ(hist_count("shmem.put.latency_ps", pe), 1u);
    EXPECT_GE(hist_count("shmem.get.latency_ps", pe), 1u);
    EXPECT_GE(hist_count("shmem.barrier.wait_ps", pe), 3u);
    EXPECT_GT(counter("sim.tile.busy_ps", pe), 0u);
    EXPECT_GT(counter("udn.packets", pe), 0u);
    EXPECT_GT(counter("cache.l1_hits", pe) + counter("cache.l2_hits", pe) +
                  counter("cache.dram_accesses", pe),
              0u);
  }
  // Device-wide metrics live at pe = -1.
  EXPECT_GT(counter("tmc.cmem.maps", -1), 0u);
}

TEST(Metrics, VirtualTimeBitIdenticalWithMetricsOnOrOff) {
  // The zero-virtual-cost contract: the same workload must leave every PE's
  // clock at exactly the same picosecond whether metrics are on or off.
  constexpr int kPes = 4;
  const auto run_with = [&](bool metrics) {
    tshmem::RuntimeOptions opts;
    opts.metrics = metrics;
    tshmem::Runtime rt(tilesim::tile_gx36(), opts);
    std::vector<std::uint64_t> end_ps(kPes, 0);
    rt.run(kPes, [&](tshmem::Context& ctx) { workload(ctx, &end_ps); });
    return end_ps;
  };
  const auto off = run_with(false);
  const auto on = run_with(true);
  ASSERT_EQ(off.size(), on.size());
  for (int pe = 0; pe < kPes; ++pe) {
    EXPECT_EQ(off[static_cast<std::size_t>(pe)],
              on[static_cast<std::size_t>(pe)])
        << "virtual time diverged on pe " << pe;
  }
  for (const std::uint64_t t : off) EXPECT_GT(t, 0u);
}

// An NBI-heavy workload: non-blocking puts/gets with interleaved fences,
// compute, and quiet — exercises the DMA-engine counters end to end.
void nbi_workload(tshmem::Context& ctx, std::vector<std::uint64_t>* end_ps) {
  const int npes = ctx.num_pes();
  auto* buf = static_cast<std::byte*>(ctx.shmalloc(1 << 16));
  ctx.barrier_all();
  for (int round = 0; round < 3; ++round) {
    // Puts write the remote [0, 2048) window; the get reads a disjoint
    // remote window so concurrent rounds never conflict.
    ctx.put_nbi(buf, buf + (1 << 15), 2048, (ctx.my_pe() + 1) % npes);
    ctx.put_nbi(buf, buf + (1 << 15), 1024, (ctx.my_pe() + 1) % npes);
    ctx.fence();  // pending queue: store-buffer drain only
    ctx.get_nbi(buf + (1 << 15), buf + (1 << 14), 512,
                (ctx.my_pe() + 2) % npes);
    ctx.charge_int_ops(10'000);
    ctx.quiet();
    ctx.barrier_all();
  }
  ctx.shfree(buf);
  (*end_ps)[static_cast<std::size_t>(ctx.my_pe())] = ctx.clock().now();
}

TEST(Metrics, RuntimeCollectsDmaCounters) {
  tshmem::RuntimeOptions opts;
  opts.metrics = true;
  tshmem::Runtime rt(tilesim::tile_gx36(), opts);
  constexpr int kPes = 4;
  std::vector<std::uint64_t> end_ps(kPes, 0);
  rt.run(kPes, [&](tshmem::Context& ctx) { nbi_workload(ctx, &end_ps); });

  const MetricsSnapshot snap = rt.metrics();
  const auto counter = [&](const std::string& name, int pe) -> std::uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == name && c.pe == pe) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name << " pe=" << pe;
    return 0;
  };
  const auto gauge = [&](const std::string& name, int pe) -> std::int64_t {
    for (const auto& g : snap.gauges) {
      if (g.name == name && g.pe == pe) return g.value;
    }
    ADD_FAILURE() << "missing gauge " << name << " pe=" << pe;
    return -1;
  };
  const auto hist_count = [&](const std::string& name,
                              int pe) -> std::uint64_t {
    for (const auto& h : snap.histograms) {
      if (h.name == name && h.pe == pe) return h.count;
    }
    ADD_FAILURE() << "missing histogram " << name << " pe=" << pe;
    return 0;
  };

  for (int pe = 0; pe < kPes; ++pe) {
    // 3 rounds x (2 puts + 1 get), all retired by the explicit quiet.
    EXPECT_EQ(counter("shmem.nbi.issued", pe), 9u) << "pe " << pe;
    EXPECT_EQ(counter("shmem.nbi.retired", pe), 9u);
    EXPECT_EQ(counter("shmem.nbi.bytes", pe), 3u * (2048 + 1024 + 512));
    EXPECT_EQ(gauge("shmem.nbi.queue_depth", pe), 0);  // all drained
    EXPECT_EQ(hist_count("shmem.nbi.quiet_wait_ps", pe), 3u);
    EXPECT_EQ(hist_count("shmem.nbi.overlap_pct", pe), 3u);
    // Two puts were in flight together before each fence/get.
    EXPECT_GE(gauge("sim.dma.peak_pending", pe), 2);
    // The DMA path bypasses the blocking put/get counters entirely.
    EXPECT_EQ(counter("shmem.put.calls", pe), 0u);
    EXPECT_EQ(counter("shmem.get.calls", pe), 0u);
  }
}

TEST(Metrics, VirtualTimeBitIdenticalWithMetricsOnOrOffNbiHeavy) {
  // Re-assert the zero-virtual-cost contract on the DMA-engine paths: the
  // new counters, gauges, and histograms must not move any PE clock.
  constexpr int kPes = 4;
  const auto run_with = [&](bool metrics) {
    tshmem::RuntimeOptions opts;
    opts.metrics = metrics;
    tshmem::Runtime rt(tilesim::tile_gx36(), opts);
    std::vector<std::uint64_t> end_ps(kPes, 0);
    rt.run(kPes, [&](tshmem::Context& ctx) { nbi_workload(ctx, &end_ps); });
    return end_ps;
  };
  const auto off = run_with(false);
  const auto on = run_with(true);
  ASSERT_EQ(off.size(), on.size());
  for (int pe = 0; pe < kPes; ++pe) {
    EXPECT_EQ(off[static_cast<std::size_t>(pe)],
              on[static_cast<std::size_t>(pe)])
        << "virtual time diverged on pe " << pe;
  }
  for (const std::uint64_t t : off) EXPECT_GT(t, 0u);
}

TEST(Metrics, EnvVarOverridesRuntimeOption) {
  ::setenv("TSHMEM_METRICS", "1", 1);
  {
    tshmem::Runtime rt(tilesim::tile_gx36());
    EXPECT_TRUE(rt.metrics_enabled());
  }
  ::setenv("TSHMEM_METRICS", "off", 1);
  {
    tshmem::RuntimeOptions opts;
    opts.metrics = true;
    tshmem::Runtime rt(tilesim::tile_gx36(), opts);
    EXPECT_FALSE(rt.metrics_enabled());
  }
  ::unsetenv("TSHMEM_METRICS");
}

// ===========================================================================
// Quantile extraction (obs/quantiles.hpp, serving tentpole)
// ===========================================================================

TEST(Quantiles, EmptyHistogramReturnsZero) {
  Log2Histogram h;
  EXPECT_EQ(obs::histogram_quantile(h, 0.0), 0u);
  EXPECT_EQ(obs::histogram_quantile(h, 0.5), 0u);
  EXPECT_EQ(obs::histogram_quantile(h, 1.0), 0u);
  EXPECT_EQ(obs::latency_quantiles(h), obs::LatencyQuantiles{});
}

TEST(Quantiles, OutOfRangeQThrows) {
  Log2Histogram h;
  h.record(42);
  EXPECT_THROW((void)obs::histogram_quantile(h, -0.01),
               std::invalid_argument);
  EXPECT_THROW((void)obs::histogram_quantile(h, 1.01),
               std::invalid_argument);
}

TEST(Quantiles, SingleSampleIsExactAtEveryQ) {
  Log2Histogram h;
  h.record(12345);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(obs::histogram_quantile(h, q), 12345u) << "q=" << q;
  }
}

TEST(Quantiles, SingleBucketInterpolatesWithinMinMaxEnvelope) {
  // All samples in bucket 10 ([512, 1023]); the envelope [600, 1000]
  // must clip the interpolation.
  Log2Histogram h;
  h.record(600);
  h.record(800);
  h.record(1000);
  EXPECT_EQ(obs::histogram_quantile(h, 0.0), 600u);
  EXPECT_EQ(obs::histogram_quantile(h, 1.0), 1000u);
  const std::uint64_t p50 = obs::histogram_quantile(h, 0.5);
  EXPECT_GE(p50, 600u);
  EXPECT_LE(p50, 1000u);
}

TEST(Quantiles, SaturatedTopBucketStaysWithinMax) {
  // Bucket 64's nominal upper bound is 2^64 - 1; the exact max must cap
  // the tail instead of exploding it.
  Log2Histogram h;
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max() - 7;
  for (int i = 0; i < 10; ++i) h.record(100);
  h.record(top);
  EXPECT_EQ(obs::histogram_quantile(h, 1.0), top);
  EXPECT_LE(obs::histogram_quantile(h, 0.999), top);
  EXPECT_GE(obs::histogram_quantile(h, 0.999), 100u);
}

TEST(Quantiles, TailOrderingAcrossBuckets) {
  // 900 fast + 90 medium + 10 slow: p50 fast, p99 medium+, p999 slow.
  Log2Histogram h;
  for (int i = 0; i < 900; ++i) h.record(1'000);
  for (int i = 0; i < 90; ++i) h.record(1'000'000);
  for (int i = 0; i < 10; ++i) h.record(100'000'000);
  const obs::LatencyQuantiles lq = obs::latency_quantiles(h);
  EXPECT_LE(lq.p50, lq.p99);
  EXPECT_LE(lq.p99, lq.p999);
  EXPECT_LE(lq.p50, 2'047u);             // inside the fast bucket
  EXPECT_GE(lq.p999, 67'108'864u);       // inside the slow bucket
  EXPECT_LE(lq.p999, 100'000'000u);      // capped by the exact max
}

TEST(Quantiles, SnapshotSampleAgreesWithLiveHistogram) {
  MetricsRegistry reg;
  Log2Histogram& h = reg.histogram("svc.latency.ps", 0);
  std::uint64_t v = 17;
  for (int i = 0; i < 500; ++i) {
    h.record(v);
    v = v * 2'654'435'761u % 10'000'000u + 1;
  }
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(obs::histogram_quantile(h, q),
              obs::histogram_quantile(snap.histograms[0], q))
        << "q=" << q;
  }
}

}  // namespace
