// Tests for the device configurations: Table II characteristics, bandwidth
// curve interpolation, and contention curves.
#include <gtest/gtest.h>

#include "sim/config.hpp"

namespace {

using tilesim::BandwidthCurve;
using tilesim::ContentionCurve;

TEST(DeviceConfig, TableIICharacteristicsGx36) {
  const auto& c = tilesim::tile_gx36();
  EXPECT_EQ(c.name, "TILE-Gx8036");
  EXPECT_EQ(c.tile_count(), 36);
  EXPECT_EQ(c.word_bytes, 8);
  EXPECT_DOUBLE_EQ(c.clock_ghz, 1.0);
  EXPECT_EQ(c.l1i_bytes, 32u * 1024);
  EXPECT_EQ(c.l1d_bytes, 32u * 1024);
  EXPECT_EQ(c.l2_bytes, 256u * 1024);
  EXPECT_EQ(c.ddr_controllers, 2);
  EXPECT_TRUE(c.has_mpipe);
  EXPECT_TRUE(c.has_mica);
  EXPECT_TRUE(c.supports_udn_interrupts);
  EXPECT_EQ(c.cycle_ps(), 1000u);
}

TEST(DeviceConfig, TableIICharacteristicsPro64) {
  const auto& c = tilesim::tile_pro64();
  EXPECT_EQ(c.name, "TILEPro64");
  EXPECT_EQ(c.tile_count(), 64);
  EXPECT_EQ(c.word_bytes, 4);
  EXPECT_DOUBLE_EQ(c.clock_ghz, 0.7);
  EXPECT_EQ(c.l1d_bytes, 8u * 1024);
  EXPECT_EQ(c.l2_bytes, 64u * 1024);
  EXPECT_EQ(c.ddr_controllers, 4);
  EXPECT_FALSE(c.has_mpipe);
  EXPECT_FALSE(c.supports_udn_interrupts);
  EXPECT_EQ(c.cycle_ps(), 1429u);  // 700 MHz
}

TEST(DeviceConfig, LookupByName) {
  EXPECT_EQ(&tilesim::device_by_name("gx36"), &tilesim::tile_gx36());
  EXPECT_EQ(&tilesim::device_by_name("gx"), &tilesim::tile_gx36());
  EXPECT_EQ(&tilesim::device_by_name("pro64"), &tilesim::tile_pro64());
  EXPECT_EQ(&tilesim::device_by_name("pro"), &tilesim::tile_pro64());
  EXPECT_THROW((void)tilesim::device_by_name("tile-mx"), std::invalid_argument);
  EXPECT_EQ(tilesim::all_devices().size(), 2u);
}

TEST(BandwidthCurve, ClampsOutsideRange) {
  BandwidthCurve c({{64, 100.0}, {1024, 400.0}});
  EXPECT_DOUBLE_EQ(c.mbps(1), 100.0);
  EXPECT_DOUBLE_EQ(c.mbps(64), 100.0);
  EXPECT_DOUBLE_EQ(c.mbps(1024), 400.0);
  EXPECT_DOUBLE_EQ(c.mbps(1 << 20), 400.0);
}

TEST(BandwidthCurve, LogLinearInterpolation) {
  BandwidthCurve c({{64, 100.0}, {256, 300.0}});
  // Midpoint in log2 space (128) -> midpoint bandwidth (200).
  EXPECT_NEAR(c.mbps(128), 200.0, 1e-9);
}

TEST(BandwidthCurve, ValidatesAnchors) {
  EXPECT_THROW(BandwidthCurve(std::vector<BandwidthCurve::Anchor>{}),
               std::invalid_argument);
  EXPECT_THROW(BandwidthCurve({{64, 100.0}, {64, 200.0}}),
               std::invalid_argument);
  EXPECT_THROW(BandwidthCurve({{64, 100.0}, {32, 200.0}}),
               std::invalid_argument);
  EXPECT_THROW(BandwidthCurve({{64, 0.0}}), std::invalid_argument);
}

TEST(BandwidthCurve, Gx36PaperAnchors) {
  // Fig 3 anchors: ~3100 MB/s L1d plateau; 1900 MB/s at the L2 capacity;
  // 1000 MB/s at 1 MB; 320 MB/s memory-to-memory.
  const auto& c = tilesim::tile_gx36().bw_shared_to_shared;
  EXPECT_NEAR(c.mbps(32 * 1024), 3100, 1);
  EXPECT_NEAR(c.mbps(256 * 1024), 1900, 1);
  EXPECT_NEAR(c.mbps(1 << 20), 1000, 1);
  EXPECT_NEAR(c.mbps(64 << 20), 320, 1);
}

TEST(BandwidthCurve, Pro64PaperAnchorsAndCrossover) {
  const auto& gx = tilesim::tile_gx36().bw_shared_to_shared;
  const auto& pro = tilesim::tile_pro64().bw_shared_to_shared;
  // Pro: ~500 MB/s through cache-resident sizes, 370 MB/s at memory.
  EXPECT_NEAR(pro.mbps(8 * 1024), 510, 1);
  EXPECT_NEAR(pro.mbps(64 << 20), 370, 1);
  // The paper's one crossover: Pro beats Gx for memory-to-memory copies...
  EXPECT_GT(pro.mbps(64 << 20), gx.mbps(64 << 20));
  // ...but loses everywhere in the cache-resident region.
  EXPECT_LT(pro.mbps(32 * 1024), gx.mbps(32 * 1024));
  EXPECT_LT(pro.mbps(1024), gx.mbps(1024));
}

TEST(ContentionCurve, InterpolatesAndClamps) {
  ContentionCurve c({{1, 1.0}, {8, 0.5}, {16, 0.25}});
  EXPECT_DOUBLE_EQ(c.efficiency(1), 1.0);
  EXPECT_DOUBLE_EQ(c.efficiency(0), 1.0);   // clamp below
  EXPECT_DOUBLE_EQ(c.efficiency(16), 0.25);
  EXPECT_DOUBLE_EQ(c.efficiency(64), 0.25);  // clamp above
  EXPECT_NEAR(c.efficiency(12), 0.375, 1e-12);  // midpoint
}

TEST(ContentionCurve, Validation) {
  EXPECT_THROW(ContentionCurve(std::vector<ContentionCurve::Point>{}),
               std::invalid_argument);
  EXPECT_THROW(ContentionCurve({{1, 1.0}, {1, 0.5}}), std::invalid_argument);
  EXPECT_THROW(ContentionCurve({{1, 1.5}}), std::invalid_argument);
  EXPECT_THROW(ContentionCurve({{1, 0.0}}), std::invalid_argument);
}

TEST(ContentionCurve, Gx36PullBroadcastPeaksAt29Tiles) {
  // Fig 10: aggregate = n * solo_bw * eff(n) peaks at 29 tiles (~46 GB/s)
  // and falls to ~37 GB/s at 36.
  const auto& cfg = tilesim::tile_gx36();
  const double solo = cfg.bw_shared_to_shared.mbps(32 * 1024);
  auto aggregate = [&](int n) {
    return n * solo * cfg.read_contention.efficiency(n) / 1000.0;  // GB/s
  };
  EXPECT_NEAR(aggregate(29), 46.0, 3.0);
  EXPECT_NEAR(aggregate(36), 37.0, 3.0);
  EXPECT_GT(aggregate(29), aggregate(36));
  EXPECT_GT(aggregate(29), aggregate(16));
  EXPECT_GT(aggregate(16), aggregate(8));
}

TEST(UdnTiming, SetupTeardownMatchesPaperDerivation) {
  // §III-C: ~21 ns on TILE-Gx (1 ns/hop at 1 GHz), ~18 ns on TILEPro
  // (1.43 ns/hop at 700 MHz).
  EXPECT_EQ(tilesim::tile_gx36().udn_setup_teardown_ps, 21'000u);
  EXPECT_EQ(tilesim::tile_pro64().udn_setup_teardown_ps, 18'000u);
}

TEST(BarrierModel, Fig5AnchorsAt36Tiles) {
  const auto& gx = tilesim::tile_gx36().barrier;
  const auto& pro = tilesim::tile_pro64().barrier;
  const auto at36 = [](const tilesim::BarrierModel& m, bool spin) {
    return spin ? m.spin_base_ps + 36 * m.spin_per_tile_ps
                : m.sync_base_ps + 36 * m.sync_per_tile_ps;
  };
  EXPECT_NEAR(at36(gx, true) / 1e6, 1.5, 0.1);     // 1.5 us
  EXPECT_NEAR(at36(pro, true) / 1e6, 47.2, 1.0);   // 47.2 us
  EXPECT_NEAR(at36(gx, false) / 1e6, 321.0, 5.0);  // 321 us
  EXPECT_NEAR(at36(pro, false) / 1e6, 786.0, 8.0); // 786 us
}

}  // namespace
