// Tests for the non-blocking communication layer (ISSUE 3): the per-tile
// DMA engine's completion-time arithmetic, shmem_put/get_nbi semantics,
// quiet/fence ordering, determinism of completion timestamps across repeated
// runs, NBI+barrier interaction, and failure injection (finalize with
// outstanding transfers, clock reset under in-flight descriptors).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "sim/dma.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"
#include "util/error.hpp"

namespace {

using tilesim::DmaDescriptor;
using tilesim::DmaEngine;
using tshmem::Context;
using tshmem::Runtime;
using tshmem_util::ps_t;

// ===========================================================================
// DmaEngine unit tests (no runtime)
// ===========================================================================

TEST(DmaEngine, CompletionFollowsIssueFormula) {
  const auto& cfg = tilesim::tile_gx36();
  DmaEngine eng(cfg);
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_EQ(eng.engine_free_ps(), 0u);

  // Idle engine: start at issue time.
  const DmaDescriptor a = eng.issue(1, true, 4096, /*issue_ps=*/1000,
                                    /*transfer_cost_ps=*/50'000);
  EXPECT_EQ(a.start_ps, 1000u);
  EXPECT_EQ(a.complete_ps, 1000 + cfg.dma_setup_ps + 50'000);
  EXPECT_EQ(eng.engine_free_ps(), a.complete_ps);
  EXPECT_EQ(eng.pending(), 1u);

  // Busy engine: second transfer queues behind the first (single channel).
  const DmaDescriptor b = eng.issue(2, false, 64, /*issue_ps=*/2000,
                                    /*transfer_cost_ps=*/7'000);
  EXPECT_EQ(b.start_ps, a.complete_ps);
  EXPECT_EQ(b.complete_ps, a.complete_ps + cfg.dma_setup_ps + 7'000);
  EXPECT_GT(b.id, a.id);

  // Issue after the channel went idle again: start snaps to issue time.
  const DmaDescriptor c =
      eng.issue(1, true, 8, b.complete_ps + 5'000, /*transfer_cost_ps=*/100);
  EXPECT_EQ(c.start_ps, b.complete_ps + 5'000);

  const auto drained = eng.drain_all();
  EXPECT_EQ(drained.retired, 3u);
  EXPECT_EQ(drained.max_complete_ps, c.complete_ps);
  EXPECT_EQ(eng.pending(), 0u);

  const auto st = eng.stats();
  EXPECT_EQ(st.issued, 3u);
  EXPECT_EQ(st.retired, 3u);
  EXPECT_EQ(st.bytes, 4096u + 64u + 8u);
  EXPECT_EQ(st.peak_pending, 3u);
}

TEST(DmaEngine, PendingSnapshotIsFifoWithMonotoneCompletions) {
  DmaEngine eng(tilesim::tile_gx36());
  for (int i = 0; i < 5; ++i) {
    eng.issue(1, true, 1u << i, /*issue_ps=*/0, /*transfer_cost_ps=*/1'000);
  }
  const std::vector<DmaDescriptor> q = eng.pending_snapshot();
  ASSERT_EQ(q.size(), 5u);
  for (std::size_t i = 1; i < q.size(); ++i) {
    EXPECT_GT(q[i].id, q[i - 1].id);
    // Single FIFO channel: each transfer starts exactly when the previous
    // one completes, so completions are strictly increasing.
    EXPECT_EQ(q[i].start_ps, q[i - 1].complete_ps);
    EXPECT_GT(q[i].complete_ps, q[i - 1].complete_ps);
  }
}

TEST(DmaEngine, ResetThrowsOnInflightButClearIsUnconditional) {
  DmaEngine eng(tilesim::tile_gx36());
  eng.issue(0, true, 128, 0, 1'000);
  EXPECT_THROW(eng.reset(), std::logic_error);  // stale timestamps hazard
  eng.clear();
  EXPECT_EQ(eng.pending(), 0u);
  EXPECT_EQ(eng.engine_free_ps(), 0u);
  EXPECT_NO_THROW(eng.reset());  // empty engine resets fine
}

TEST(DmaEngine, ResetErrorNamesPeAndQueueDepth) {
  // "Which engine, how much" is the first thing a stuck-reset diagnosis
  // needs; cover both device generations since the message is shared.
  for (const auto& cfg : {tilesim::tile_gx36(), tilesim::tile_pro64()}) {
    DmaEngine eng(cfg, /*tile_id=*/7);
    eng.issue(0, true, 128, 0, 1'000);
    eng.issue(1, false, 64, 0, 1'000);
    try {
      eng.reset();
      FAIL() << "reset with in-flight descriptors did not throw";
    } catch (const std::logic_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("PE 7"), std::string::npos) << what;
      EXPECT_NE(what.find("2 in-flight descriptor(s)"), std::string::npos)
          << what;
    }
    eng.clear();
  }
  // An engine constructed without a tile id stays diagnosable too.
  DmaEngine bare(tilesim::tile_gx36());
  bare.issue(0, true, 8, 0, 100);
  try {
    bare.reset();
    FAIL() << "reset with in-flight descriptors did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("unattached engine"),
              std::string::npos);
  }
}

// ===========================================================================
// NBI put/get semantics
// ===========================================================================

class NbiTest : public ::testing::Test {
 protected:
  Runtime rt_{tilesim::tile_gx36()};
};

TEST_F(NbiTest, PutNbiDeliversAfterQuiet) {
  rt_.run(4, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(256);
    for (int i = 0; i < 256; ++i) buf[i] = -1;
    ctx.barrier_all();
    std::vector<int> src(256);
    std::iota(src.begin(), src.end(), ctx.my_pe() * 1000);
    ctx.put_nbi(buf, src.data(), 256 * sizeof(int), (ctx.my_pe() + 1) % 4);
    EXPECT_EQ(ctx.nbi_pending(), 1u);
    ctx.quiet();
    EXPECT_EQ(ctx.nbi_pending(), 0u);
    ctx.barrier_all();
    const int writer = (ctx.my_pe() + 3) % 4;
    for (int i = 0; i < 256; ++i) EXPECT_EQ(buf[i], writer * 1000 + i);
    ctx.shfree(buf);
  });
}

TEST_F(NbiTest, GetNbiCompletesAtQuiet) {
  rt_.run(2, [](Context& ctx) {
    double* buf = ctx.shmalloc_n<double>(64);
    for (int i = 0; i < 64; ++i) buf[i] = ctx.my_pe() + i * 0.5;
    ctx.barrier_all();
    double dst[64] = {};
    const int src_pe = 1 - ctx.my_pe();
    ctx.get_nbi(dst, buf, sizeof(dst), src_pe);
    EXPECT_EQ(ctx.nbi_pending(), 1u);
    ctx.quiet();
    for (int i = 0; i < 64; ++i) EXPECT_EQ(dst[i], src_pe + i * 0.5);
    ctx.barrier_all();
    ctx.shfree(buf);
  });
}

TEST_F(NbiTest, PutNbiIsCheaperThanBlockingPutAtIssue) {
  rt_.run(2, [](Context& ctx) {
    constexpr std::size_t kBytes = 256 * 1024;
    auto* buf = static_cast<std::byte*>(ctx.shmalloc(kBytes));
    ctx.barrier_all();
    ctx.harness_sync_reset();
    ps_t blocking = 0, nbi_issue = 0;
    if (ctx.my_pe() == 0) {
      ps_t t0 = ctx.clock().now();
      ctx.put(buf, buf, kBytes, 1);
      blocking = ctx.clock().now() - t0;
      t0 = ctx.clock().now();
      ctx.put_nbi(buf, buf, kBytes, 1);
      nbi_issue = ctx.clock().now() - t0;
      ctx.quiet();
      // The issue path charges only call overhead + descriptor post; the
      // transfer itself rides on the engine's timeline.
      EXPECT_LT(nbi_issue, blocking / 4);
      const auto& cfg = ctx.runtime().config();
      EXPECT_EQ(nbi_issue, cfg.shmem_call_overhead_ps + cfg.dma_issue_ps);
    }
    ctx.harness_sync_reset();
    ctx.shfree(buf);
  });
}

TEST_F(NbiTest, ZeroByteNbiIsNoop) {
  rt_.run(2, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(1);
    *buf = 31;
    ctx.barrier_all();
    ctx.put_nbi(buf, nullptr, 0, 1 - ctx.my_pe());
    ctx.get_nbi(nullptr, buf, 0, 1 - ctx.my_pe());
    EXPECT_EQ(ctx.nbi_pending(), 0u);
    ctx.barrier_all();
    EXPECT_EQ(*buf, 31);
    ctx.shfree(buf);
  });
}

TEST_F(NbiTest, ErrorsMatchBlockingPath) {
  rt_.run(2, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(4);
    int stack_target[4];
    int v = 0;
    EXPECT_THROW(ctx.put_nbi(buf, &v, 4, 5), std::out_of_range);
    EXPECT_THROW(ctx.get_nbi(&v, buf, 4, -1), std::out_of_range);
    if (ctx.my_pe() == 0) {
      EXPECT_THROW(ctx.put_nbi(stack_target, &v, 4, 1), std::invalid_argument);
      EXPECT_THROW(ctx.get_nbi(&v, stack_target, 4, 1), std::invalid_argument);
    }
    EXPECT_EQ(ctx.nbi_pending(), 0u);
    ctx.barrier_all();
    ctx.shfree(buf);
  });
}

TEST_F(NbiTest, StaticRemoteFallsBackToSynchronousTransfer) {
  // Static remote targets need the interrupt path, which the DMA engine
  // cannot drive: the transfer completes synchronously and leaves nothing
  // in the queue (still a valid _nbi implementation — OpenSHMEM allows
  // completion any time before quiet).
  rt_.run(2, [](Context& ctx) {
    int* stat = ctx.static_sym<int>("nbi_static", 16);
    int* dyn = ctx.shmalloc_n<int>(16);
    for (int i = 0; i < 16; ++i) {
      stat[i] = -1;
      dyn[i] = ctx.my_pe() * 100 + i;
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      ctx.put_nbi(stat, dyn, 16 * sizeof(int), 1);
      EXPECT_EQ(ctx.nbi_pending(), 0u);  // completed at issue
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      for (int i = 0; i < 16; ++i) EXPECT_EQ(stat[i], i);
    }
    ctx.barrier_all();
    ctx.shfree(dyn);
  });
}

// ===========================================================================
// quiet / fence ordering
// ===========================================================================

TEST_F(NbiTest, QuietWithEmptyQueueIsExactlyAMemFence) {
  // Paper §IV-C2 behavior must be bit-identical when no NBI traffic exists:
  // quiet() with an empty queue costs exactly the CPU store-buffer drain.
  rt_.run(2, [](Context& ctx) {
    const ps_t fence_cost = ctx.runtime().config().cycle_ps() * 8;
    const ps_t t0 = ctx.clock().now();
    ctx.quiet();
    EXPECT_EQ(ctx.clock().now() - t0, fence_cost);
    const ps_t t1 = ctx.clock().now();
    ctx.fence();  // empty queue: fence is an alias of quiet
    EXPECT_EQ(ctx.clock().now() - t1, fence_cost);
    ctx.barrier_all();
  });
}

TEST_F(NbiTest, FenceWithPendingQueueOrdersWithoutDraining) {
  rt_.run(2, [](Context& ctx) {
    constexpr std::size_t kBytes = 64 * 1024;
    auto* buf = static_cast<std::byte*>(ctx.shmalloc(2 * kBytes));
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      ctx.put_nbi(buf, buf + kBytes, kBytes, 1);
      EXPECT_EQ(ctx.nbi_pending(), 1u);
      const ps_t t0 = ctx.clock().now();
      ctx.fence();
      // Per-destination ordering is inherent in the FIFO engine, so fence
      // only drains the store buffer — it must NOT wait for the transfer.
      EXPECT_EQ(ctx.clock().now() - t0, ctx.runtime().config().cycle_ps() * 8);
      EXPECT_EQ(ctx.nbi_pending(), 1u);
      ctx.put_nbi(buf, buf + kBytes, kBytes, 1);
      ctx.quiet();
      EXPECT_EQ(ctx.nbi_pending(), 0u);
    }
    ctx.barrier_all();
    ctx.shfree(buf);
  });
}

TEST_F(NbiTest, QuietAdvancesToLatestCompletion) {
  rt_.run(2, [](Context& ctx) {
    constexpr std::size_t kBytes = 1 << 20;
    auto* buf = static_cast<std::byte*>(ctx.shmalloc(2 * kBytes));
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      ctx.put_nbi(buf, buf + kBytes, kBytes, 1);
      const auto q = ctx.tile().dma().pending_snapshot();
      ASSERT_EQ(q.size(), 1u);
      const ps_t complete = q[0].complete_ps;
      EXPECT_GT(complete, ctx.clock().now());  // still in flight
      ctx.quiet();
      // quiet merges the completion timestamp, then pays the store fence.
      EXPECT_EQ(ctx.clock().now(),
                complete + ctx.runtime().config().cycle_ps() * 8);
    }
    ctx.barrier_all();
    ctx.shfree(buf);
  });
}

TEST_F(NbiTest, BarrierImpliesQuiet) {
  rt_.run(4, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(64);
    for (int i = 0; i < 64; ++i) buf[i] = -1;
    ctx.barrier_all();
    int src[64];
    for (int i = 0; i < 64; ++i) src[i] = ctx.my_pe() * 64 + i;
    ctx.put_nbi(buf, src, sizeof(src), (ctx.my_pe() + 1) % 4);
    EXPECT_EQ(ctx.nbi_pending(), 1u);
    ctx.barrier_all();  // OpenSHMEM: barrier completes outstanding puts
    EXPECT_EQ(ctx.nbi_pending(), 0u);
    const int writer = (ctx.my_pe() + 3) % 4;
    for (int i = 0; i < 64; ++i) EXPECT_EQ(buf[i], writer * 64 + i);
    ctx.barrier_all();
    ctx.shfree(buf);
  });
}

TEST_F(NbiTest, NbiThenWaitUntilOrdersAfterDelivery) {
  rt_.run(2, [](Context& ctx) {
    struct Msg {
      int payload[32];
      int flag;
    };
    Msg* m = ctx.shmalloc_n<Msg>(1);
    m->flag = 0;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      Msg local;
      for (int i = 0; i < 32; ++i) local.payload[i] = 7 * i;
      local.flag = 1;
      // FIFO engine: the flag write cannot overtake the payload write.
      ctx.put_nbi(m->payload, local.payload, sizeof(local.payload), 1);
      ctx.put_nbi(&m->flag, &local.flag, sizeof(int), 1);
      ctx.quiet();
    } else {
      ctx.wait_until(&m->flag, tshmem::Cmp::kNe, 0);
      for (int i = 0; i < 32; ++i) EXPECT_EQ(m->payload[i], 7 * i);
    }
    ctx.barrier_all();
    ctx.shfree(m);
  });
}

// ===========================================================================
// Determinism and overlap
// ===========================================================================

std::vector<std::uint64_t> nbi_heavy_run(Runtime& rt, int npes) {
  std::vector<std::uint64_t> end_ps(static_cast<std::size_t>(npes), 0);
  rt.run(npes, [&](Context& ctx) {
    auto* buf = static_cast<std::byte*>(ctx.shmalloc(1 << 16));
    ctx.barrier_all();
    for (int round = 0; round < 4; ++round) {
      const std::size_t bytes = 1024u << round;
      // The put writes the remote [0, bytes) window; the get reads from a
      // disjoint remote window so concurrent rounds never conflict.
      ctx.put_nbi(buf, buf + (1 << 15), bytes, (ctx.my_pe() + 1) % npes);
      ctx.get_nbi(buf + (1 << 15), buf + (1 << 14), bytes,
                  (ctx.my_pe() + 2) % npes);
      ctx.charge_int_ops(500 * (ctx.my_pe() + 1));
      if (round % 2 == 0) ctx.fence();
      ctx.quiet();
      ctx.barrier_all();
    }
    ctx.shfree(buf);
    end_ps[static_cast<std::size_t>(ctx.my_pe())] = ctx.clock().now();
  });
  return end_ps;
}

TEST_F(NbiTest, CompletionTimestampsDeterministicAcrossRuns) {
  // Completion times are computed analytically from virtual-time inputs at
  // issue, so repeated runs must land every PE clock on the same picosecond
  // regardless of host scheduling.
  const auto first = nbi_heavy_run(rt_, 4);
  for (int trial = 0; trial < 3; ++trial) {
    const auto again = nbi_heavy_run(rt_, 4);
    EXPECT_EQ(first, again) << "trial " << trial;
  }
  for (const std::uint64_t t : first) EXPECT_GT(t, 0u);
}

TEST_F(NbiTest, OverlapBeatsBlockingAtLargeMessages) {
  // The acceptance floor from ISSUE 3: >= 1.3x virtual-time speedup over
  // the blocking baseline at large sizes with compute grain 1.0 on gx36.
  rt_.run(2, [](Context& ctx) {
    constexpr std::size_t kBytes = 1 << 20;
    auto* dst = static_cast<std::byte*>(ctx.shmalloc(kBytes));
    auto* src = static_cast<std::byte*>(ctx.shmalloc(kBytes));
    ctx.barrier_all();

    ps_t blocking = 0, nbi = 0;
    ctx.harness_sync_reset();
    if (ctx.my_pe() == 0) {
      const ps_t t0 = ctx.clock().now();
      ctx.put(dst, src, kBytes, 1);
      ctx.charge_int_ops(kBytes);  // compute grain ~ transfer cost
      ctx.quiet();
      blocking = ctx.clock().now() - t0;
    }
    ctx.harness_sync_reset();
    if (ctx.my_pe() == 0) {
      const ps_t t0 = ctx.clock().now();
      ctx.put_nbi(dst, src, kBytes, 1);
      ctx.charge_int_ops(kBytes);
      ctx.quiet();
      nbi = ctx.clock().now() - t0;
      EXPECT_GE(static_cast<double>(blocking) / static_cast<double>(nbi), 1.3);
    }
    ctx.harness_sync_reset();
    ctx.shfree(src);
    ctx.shfree(dst);
  });
}

// ===========================================================================
// Failure injection
// ===========================================================================

TEST(NbiFailure, FinalizeWithOutstandingNbiThrows) {
  Runtime rt(tilesim::tile_gx36());
  EXPECT_THROW(
      rt.run(2,
             [](Context& ctx) {
               int* buf = ctx.shmalloc_n<int>(64);
               ctx.barrier_all();
               if (ctx.my_pe() == 0) {
                 int src[64] = {};
                 ctx.put_nbi(buf, src, sizeof(src), 1);
                 ctx.finalize();  // outstanding transfer: program error
               }
             }),
      std::runtime_error);
  // The failed job's in-flight descriptors must not leak into the next run.
  rt.run(2, [](Context& ctx) {
    EXPECT_EQ(ctx.nbi_pending(), 0u);
    ctx.quiet();
    ctx.barrier_all();
  });
}

TEST(NbiFailure, FinalizeAfterQuietSucceeds) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(4);
    ctx.barrier_all();
    int v[4] = {1, 2, 3, 4};
    ctx.put_nbi(buf, v, sizeof(v), 1 - ctx.my_pe());
    ctx.quiet();
    ctx.barrier_all();
    ctx.shfree(buf);
    ctx.finalize();
  });
}

TEST(NbiFailure, ClockResetUnderInflightTransfersThrows) {
  // sync_and_reset_clocks() zeroes every tile clock; doing that under
  // outstanding NBI traffic would leave stale future completion timestamps
  // poisoning advance_to(), so the engine reset refuses.
  Runtime rt(tilesim::tile_gx36());
  EXPECT_THROW(rt.run(2,
                      [](Context& ctx) {
                        auto* buf =
                            static_cast<std::byte*>(ctx.shmalloc(4096));
                        ctx.barrier_all();
                        ctx.put_nbi(buf, buf + 2048, 1024,
                                    1 - ctx.my_pe());
                        ctx.harness_sync_reset();  // throws logic_error
                      }),
               std::logic_error);
  rt.run(2, [](Context& ctx) { ctx.barrier_all(); });  // reusable after
}

TEST(NbiPro64, FinalizeWithOutstandingNbiNamesPeAndCount) {
  // Same finalize contract on the TILEPro64 pseudo-DMA path, now with the
  // structured kFinalizePending error naming the PE and queue depth.
  Runtime rt(tilesim::tile_pro64());
  std::atomic<bool> checked{false};
  EXPECT_THROW(
      rt.run(2,
             [&](Context& ctx) {
               int* buf = ctx.shmalloc_n<int>(64);
               ctx.barrier_all();
               if (ctx.my_pe() == 0) {
                 int src[64] = {};
                 ctx.put_nbi(buf, src, sizeof(src), 1);
                 try {
                   ctx.finalize();
                 } catch (const tshmem::Error& e) {
                   EXPECT_EQ(e.code(), tshmem::Errc::kFinalizePending);
                   const std::string what = e.what();
                   EXPECT_NE(what.find("PE 0"), std::string::npos) << what;
                   EXPECT_NE(what.find("1 outstanding"), std::string::npos)
                       << what;
                   checked.store(true);
                   throw;
                 }
               }
             }),
      std::runtime_error);
  EXPECT_TRUE(checked.load());
  rt.run(2, [](Context& ctx) {
    EXPECT_EQ(ctx.nbi_pending(), 0u);
    ctx.barrier_all();
  });
}

TEST(NbiPro64, ClockResetUnderInflightTransfersThrowsNamingPe) {
  Runtime rt(tilesim::tile_pro64());
  try {
    rt.run(2, [](Context& ctx) {
      auto* buf = static_cast<std::byte*>(ctx.shmalloc(4096));
      ctx.barrier_all();
      ctx.put_nbi(buf, buf + 2048, 1024, 1 - ctx.my_pe());
      ctx.harness_sync_reset();  // tile 0 resets all engines: throws
    });
    FAIL() << "clock reset under in-flight transfers did not throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("PE 0"), std::string::npos) << what;
    EXPECT_NE(what.find("in-flight descriptor(s)"), std::string::npos)
        << what;
  }
  rt.run(2, [](Context& ctx) { ctx.barrier_all(); });  // reusable after
}

TEST(NbiPro64, NbiWorksOnSoftwarePseudoDma) {
  // TILEPro has no mPIPE: the model still supports dynamic-target NBI via
  // the software pseudo-DMA timeline (larger setup costs), while static
  // remote targets keep throwing as on the blocking path.
  Runtime rt(tilesim::tile_pro64());
  rt.run(2, [](Context& ctx) {
    int* dyn = ctx.shmalloc_n<int>(64);
    int* stat = ctx.static_sym<int>("pro_nbi", 4);
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      int src[64] = {};
      ctx.put_nbi(dyn, src, sizeof(src), 1);
      EXPECT_EQ(ctx.nbi_pending(), 1u);
      ctx.quiet();
      EXPECT_THROW(ctx.put_nbi(stat, src, 16, 1), std::runtime_error);
    }
    ctx.barrier_all();
    ctx.shfree(dyn);
  });
}

}  // namespace
