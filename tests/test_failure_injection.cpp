// Failure-injection tests: drive the library's error paths deliberately —
// heap exhaustion, resource misuse, protocol violations, teardown checks —
// and assert the failure surfaces cleanly (documented error, no deadlock,
// runtime reusable afterwards).
#include <gtest/gtest.h>

#include <atomic>

#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"
#include "util/error.hpp"

namespace {

using tshmem::Context;
using tshmem::Runtime;
using tshmem::RuntimeOptions;

TEST(FailureInjection, ShmallocExhaustionReturnsNullOnEveryPe) {
  RuntimeOptions opts;
  opts.heap_per_pe = 1 << 16;  // tiny partitions
  Runtime rt(tilesim::tile_gx36(), opts);
  std::atomic<int> nulls{0};
  rt.run(4, [&](Context& ctx) {
    void* big = ctx.shmalloc(1 << 20);  // cannot fit
    if (big == nullptr) nulls.fetch_add(1);
    // The heap remains usable after the failed allocation.
    void* ok = ctx.shmalloc(128);
    EXPECT_NE(ok, nullptr);
    ctx.shfree(ok);
  });
  EXPECT_EQ(nulls.load(), 4);  // same answer everywhere: symmetry preserved
}

TEST(FailureInjection, ShreallocFailureKeepsOriginalIntact) {
  RuntimeOptions opts;
  opts.heap_per_pe = 1 << 16;
  Runtime rt(tilesim::tile_gx36(), opts);
  rt.run(2, [](Context& ctx) {
    int* p = ctx.shmalloc_n<int>(16);
    ASSERT_NE(p, nullptr);
    for (int i = 0; i < 16; ++i) p[i] = i * 3;
    void* moved = ctx.shrealloc(p, 1 << 20);  // cannot fit
    EXPECT_EQ(moved, nullptr);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(p[i], i * 3);  // untouched
    ctx.shfree(p);
  });
}

TEST(FailureInjection, ExhaustedHeapRecoversAfterFree) {
  RuntimeOptions opts;
  opts.heap_per_pe = 1 << 17;
  Runtime rt(tilesim::tile_gx36(), opts);
  rt.run(2, [](Context& ctx) {
    void* a = ctx.shmalloc(100 * 1024);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(ctx.shmalloc(100 * 1024), nullptr);  // exhausted
    ctx.shfree(a);
    void* b = ctx.shmalloc(100 * 1024);  // space reclaimed
    EXPECT_NE(b, nullptr);
    ctx.shfree(b);
  });
}

TEST(FailureInjection, StaticArenaExhaustionThrows) {
  RuntimeOptions opts;
  opts.private_per_pe = 4096;
  Runtime rt(tilesim::tile_gx36(), opts);
  EXPECT_THROW(
      rt.run(2,
             [](Context& ctx) {
               (void)ctx.static_sym<std::byte>("fits", 2048);
               (void)ctx.static_sym<std::byte>("does_not", 4096);
             }),
      std::runtime_error);
  // Runtime reusable after the failed job.
  rt.run(2, [](Context& ctx) { ctx.barrier_all(); });
}

TEST(FailureInjection, FinalizeDetectsUndrainedUdnQueue) {
  // A stray message left in a demux queue is exactly the condition the
  // paper's proposed shmem_finalize() exists to catch (SIV-E: "platform
  // instability or lockup may occur if [the UDN] is not properly
  // disengaged").
  Runtime rt(tilesim::tile_gx36());
  EXPECT_THROW(
      rt.run(2,
             [](Context& ctx) {
               ctx.barrier_all();
               if (ctx.my_pe() == 0) {
                 ctx.runtime().udn().send1(ctx.tile(), 1, 0, 0xdead);
               }
               ctx.barrier_all();
               if (ctx.my_pe() == 1) {
                 ctx.finalize();  // queue 0 still holds the stray packet
               }
             }),
      std::runtime_error);
}

TEST(FailureInjection, MismatchedCollectiveSizesCaughtByValidator) {
  RuntimeOptions opts;
  opts.validate_symmetry = true;
  Runtime rt(tilesim::tile_gx36(), opts);
  EXPECT_THROW(rt.run(3,
                      [](Context& ctx) {
                        (void)ctx.shmalloc(ctx.my_pe() == 1 ? 256 : 128);
                      }),
               std::logic_error);
}

TEST(FailureInjection, MismatchedShfreeCaughtByValidator) {
  RuntimeOptions opts;
  opts.validate_symmetry = true;
  Runtime rt(tilesim::tile_gx36(), opts);
  EXPECT_THROW(rt.run(2,
                      [](Context& ctx) {
                        void* a = ctx.shmalloc(64);
                        void* b = ctx.shmalloc(64);
                        // PEs free different blocks: asymmetric heaps ahead.
                        ctx.shfree(ctx.my_pe() == 0 ? a : b);
                      }),
               std::logic_error);
}

TEST(FailureInjection, DeadPeDoesNotHangTheJob) {
  Runtime rt(tilesim::tile_gx36());
  for (int trial = 0; trial < 3; ++trial) {
    EXPECT_THROW(rt.run(6,
                        [](Context& ctx) {
                          if (ctx.my_pe() == 3) {
                            throw std::runtime_error("injected PE death");
                          }
                          // Others do independent (non-collective) work.
                          int* p = ctx.static_sym<int>("survivor");
                          *p = ctx.my_pe();
                        }),
                 std::runtime_error);
  }
  // Full job still possible afterwards.
  rt.run(6, [](Context& ctx) { ctx.barrier_all(); });
}

TEST(FailureInjection, BounceBufferFreedEvenAcrossManyStaticTransfers) {
  // The static-static path stages through a persistent per-PE bounce slot;
  // leaking a mapping per transfer would exhaust common memory. Hammer the
  // path and verify the mapping count stays at baseline plus the one slot,
  // then that teardown returns common memory to its pre-job state.
  Runtime rt(tilesim::tile_gx36());
  const std::size_t idle = rt.cmem().mapping_count();
  rt.run(2, [](Context& ctx) {
    auto* stat = ctx.static_sym<std::byte>("bounce_hammer", 4096);
    ctx.barrier_all();
    const std::size_t baseline = ctx.runtime().cmem().mapping_count();
    if (ctx.my_pe() == 0) {
      for (int i = 0; i < 50; ++i) {
        ctx.put(stat, stat, 4096, 1);
      }
      EXPECT_EQ(ctx.runtime().cmem().mapping_count(), baseline + 1);
    }
    ctx.barrier_all();
  });
  EXPECT_EQ(rt.cmem().mapping_count(), idle);  // slot unmapped at teardown
}

TEST(FailureInjection, OversizedUdnPayloadFromApiSurfacesCleanly) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    std::vector<std::uint64_t> words(200, 0);
    EXPECT_THROW(
        ctx.runtime().udn().send(ctx.tile(), 1, 0, words),
        std::invalid_argument);
    ctx.barrier_all();
  });
}

TEST(FailureInjection, ConcurrentRunRejectedWithStructuredError) {
  // Runtime::run while a job is already running must fail fast with the
  // documented kRunInProgress code instead of corrupting the live job's
  // partitions (docs/ROBUSTNESS.md error-code table).
  Runtime rt(tilesim::tile_gx36());
  std::atomic<int> caught{0};
  rt.run(2, [&](Context& ctx) {
    if (ctx.my_pe() == 0) {
      try {
        ctx.runtime().run(1, [](Context&) {});
        ADD_FAILURE() << "nested Runtime::run did not throw";
      } catch (const tshmem::Error& e) {
        EXPECT_EQ(e.code(), tshmem::Errc::kRunInProgress);
        EXPECT_NE(std::string(e.what()).find("run_in_progress"),
                  std::string::npos);
        caught.fetch_add(1);
      }
    }
    ctx.barrier_all();
  });
  EXPECT_EQ(caught.load(), 1);
  // The live job was unaffected and the runtime stays reusable.
  rt.run(2, [](Context& ctx) { ctx.barrier_all(); });
}

TEST(FailureInjection, ForeignPointerShfreeSurfacesStructuredError) {
  // shfree of memory the symmetric heap does not own is a program error
  // that must surface as kForeignFree naming the PE, not corrupt the heap.
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long local = 0;
    try {
      ctx.shfree(&local);
      ADD_FAILURE() << "foreign shfree did not throw";
    } catch (const tshmem::Error& e) {
      EXPECT_EQ(e.code(), tshmem::Errc::kForeignFree);
      const std::string what = e.what();
      EXPECT_NE(what.find("foreign_free"), std::string::npos);
      EXPECT_NE(what.find("PE " + std::to_string(ctx.my_pe())),
                std::string::npos);
    }
    // The heap survives the rejected free.
    void* ok = ctx.shmalloc(64);
    EXPECT_NE(ok, nullptr);
    EXPECT_TRUE(ctx.heap().validate());
    ctx.shfree(ok);
  });
}

TEST(FailureInjection, InterruptPathUnavailableMidAlgorithmOnPro) {
  // A Pro job that mixes dynamic traffic (fine) with one static transfer
  // (unsupported) must fail on the static transfer only, after the dynamic
  // traffic completed correctly.
  Runtime rt(tilesim::tile_pro64());
  std::atomic<bool> dynamic_ok{false};
  EXPECT_THROW(
      rt.run(2,
             [&](Context& ctx) {
               long* dyn = ctx.shmalloc_n<long>(1);
               long* stat = ctx.static_sym<long>("pro_mixed");
               *dyn = 0;
               ctx.barrier_all();
               if (ctx.my_pe() == 0) {
                 ctx.p(dyn, 42L, 1);
                 ctx.quiet();
                 dynamic_ok.store(true);
                 ctx.put(stat, dyn, sizeof(long), 1);  // throws here
               } else {
                 ctx.wait(dyn, 0L);
                 EXPECT_EQ(*dyn, 42L);
               }
             }),
      std::runtime_error);
  EXPECT_TRUE(dynamic_ok.load());
}

}  // namespace
