// End-to-end smoke tests: launch real SPMD jobs on both simulated devices
// and exercise the core TSHMEM paths together. Module-level details are
// covered by the dedicated per-module test files.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "tshmem/api.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::Context;
using tshmem::Runtime;

TEST(Smoke, LaunchAndIdentity) {
  tshmem::Runtime rt(tilesim::tile_gx36());
  std::atomic<int> sum{0};
  rt.run(8, [&](Context& ctx) {
    EXPECT_EQ(ctx.num_pes(), 8);
    EXPECT_GE(ctx.my_pe(), 0);
    EXPECT_LT(ctx.my_pe(), 8);
    sum.fetch_add(ctx.my_pe());
  });
  EXPECT_EQ(sum.load(), 28);
}

TEST(Smoke, RingPutAndBarrier) {
  tshmem::Runtime rt(tilesim::tile_gx36());
  rt.run(6, [](Context& ctx) {
    const int me = ctx.my_pe();
    const int n = ctx.num_pes();
    int* slot = ctx.shmalloc_n<int>(1);
    ASSERT_NE(slot, nullptr);
    *slot = -1;
    ctx.barrier_all();
    const int dest = (me + 1) % n;
    ctx.p(slot, me, dest);
    ctx.barrier_all();
    EXPECT_EQ(*slot, (me + n - 1) % n);
    ctx.shfree(slot);
  });
}

TEST(Smoke, GetFromNeighbor) {
  tshmem::Runtime rt(tilesim::tile_pro64());
  rt.run(4, [](Context& ctx) {
    const int me = ctx.my_pe();
    double* data = ctx.shmalloc_n<double>(16);
    for (int i = 0; i < 16; ++i) data[i] = me * 100.0 + i;
    ctx.barrier_all();
    std::vector<double> local(16);
    const int src = (me + 1) % ctx.num_pes();
    ctx.get(local.data(), data, 16 * sizeof(double), src);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(local[i], src * 100.0 + i);
    ctx.barrier_all();
    ctx.shfree(data);
  });
}

TEST(Smoke, SumReductionBothDevices) {
  for (const auto* cfg : tilesim::all_devices()) {
    tshmem::Runtime rt(*cfg);
    rt.run(5, [](Context& ctx) {
      const int n = ctx.num_pes();
      int* src = ctx.shmalloc_n<int>(8);
      int* dst = ctx.shmalloc_n<int>(8);
      for (int i = 0; i < 8; ++i) src[i] = ctx.my_pe() + i;
      ctx.barrier_all();
      ctx.reduce(dst, src, 8, tshmem::RedOp::kSum, ctx.world());
      const int pe_sum = n * (n - 1) / 2;
      for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], pe_sum + i * n);
      ctx.shfree(dst);
      ctx.shfree(src);
    });
  }
}

TEST(Smoke, VirtualTimeAdvancesDeterministically) {
  tshmem::Runtime rt(tilesim::tile_gx36());
  tilesim::ps_t first = 0;
  for (int trial = 0; trial < 3; ++trial) {
    tilesim::ps_t elapsed = 0;
    rt.run(4, [&](Context& ctx) {
      int* x = ctx.shmalloc_n<int>(1024);
      ctx.barrier_all();
      ctx.harness_sync_reset();
      ctx.put(x, x, 1024 * sizeof(int), (ctx.my_pe() + 1) % 4);
      ctx.barrier_all();
      if (ctx.my_pe() == 0) elapsed = ctx.clock().now();
      ctx.harness_sync();
      ctx.shfree(x);
    });
    ASSERT_GT(elapsed, 0u);
    if (trial == 0) {
      first = elapsed;
    } else {
      EXPECT_EQ(elapsed, first) << "virtual time must be schedule-independent";
    }
  }
}

TEST(Smoke, CApiRoundTrip) {
  tshmem::run_spmd(tilesim::tile_gx36(), 4, [](Context&) {
    using namespace tshmem::api;
    start_pes(0);
    const int me = _my_pe();
    const int n = _num_pes();
    ASSERT_EQ(n, 4);
    long* v = static_cast<long*>(shmalloc(sizeof(long)));
    *v = 0;
    shmem_barrier_all();
    shmem_long_p(v, me + 1000L, (me + 1) % n);
    shmem_barrier_all();
    EXPECT_EQ(*v, (me + n - 1) % n + 1000L);
    shfree(v);
    shmem_finalize();
  });
}

}  // namespace
