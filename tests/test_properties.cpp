// Property-style sweeps over protocol encodings and the typed API surface:
// control-message encode/decode round trips, active-set algebra over a
// randomized parameter space, and the full reduction type x operator matrix
// through the C API.
#include <gtest/gtest.h>

#include <vector>

#include "tshmem/api.hpp"
#include "tshmem/context.hpp"
#include "tshmem/messages.hpp"
#include "tshmem/runtime.hpp"
#include "util/rng.hpp"

namespace {

using tshmem::ActiveSet;
using tshmem::Context;
using tshmem::CtrlMsg;
using tshmem::MsgTag;
using tshmem::Runtime;
namespace api = tshmem::api;

// --- control-message encoding --------------------------------------------------

TEST(CtrlMsgProperty, EncodeDecodeRoundTripsRandomized) {
  tshmem_util::Xoshiro256 rng(31);
  for (int trial = 0; trial < 2000; ++trial) {
    CtrlMsg m;
    m.tag = static_cast<MsgTag>(1 + rng.below(11));
    m.set_id = static_cast<std::uint32_t>(rng.below(1u << 24));
    m.seq = static_cast<std::uint32_t>(rng.next());
    m.aux = rng.next();
    const CtrlMsg back = CtrlMsg::decode(m.word0(), m.aux);
    ASSERT_EQ(back.tag, m.tag);
    ASSERT_EQ(back.set_id, m.set_id);
    ASSERT_EQ(back.seq, m.seq);
    ASSERT_EQ(back.aux, m.aux);
  }
}

// --- active-set algebra ---------------------------------------------------------

TEST(ActiveSetProperty, MembersIndexPeAtAreConsistent) {
  tshmem_util::Xoshiro256 rng(32);
  for (int trial = 0; trial < 500; ++trial) {
    const ActiveSet as{static_cast<int>(rng.below(8)),
                       static_cast<int>(rng.below(4)),
                       static_cast<int>(1 + rng.below(12))};
    const auto members = as.members();
    ASSERT_EQ(members.size(), static_cast<std::size_t>(as.pe_size));
    for (int idx = 0; idx < as.pe_size; ++idx) {
      const int pe = as.pe_at(idx);
      ASSERT_EQ(members[static_cast<std::size_t>(idx)], pe);
      ASSERT_TRUE(as.contains(pe));
      ASSERT_EQ(as.index_of(pe), idx);
    }
    // Strided gaps are non-members.
    if (as.log_pe_stride > 0) {
      ASSERT_FALSE(as.contains(as.pe_start + 1));
    }
    // Just beyond the end is a non-member.
    ASSERT_FALSE(as.contains(as.pe_at(as.pe_size - 1) + as.stride()));
  }
}

// --- reduction matrix through the C API ------------------------------------------

enum class Op { kAnd, kOr, kXor, kMin, kMax, kSum, kProd };

struct ReduceMatrixCase {
  const char* type_name;
  Op op;
  bool integral_only;
};

class ReduceMatrixTest
    : public ::testing::TestWithParam<std::tuple<const char*, Op>> {};

template <typename T>
T expected_reduce(Op op, int npes, int elem) {
  // PE p contributes value(p, elem) = p + elem + 1 (arithmetic ops) or a
  // bit pattern (bitwise ops).
  if constexpr (std::is_integral_v<T>) {
    if (op == Op::kAnd) {
      auto acc = static_cast<T>(~T{0});
      for (int p = 0; p < npes; ++p) {
        acc = static_cast<T>(acc & static_cast<T>(0b1100 | (1 << (p % 2))));
      }
      return acc;
    }
    if (op == Op::kOr) {
      T acc{};
      for (int p = 0; p < npes; ++p) {
        acc = static_cast<T>(acc | static_cast<T>(1 << (p % 8)));
      }
      return acc;
    }
    if (op == Op::kXor) {
      T acc{};
      for (int p = 0; p < npes; ++p) {
        acc = static_cast<T>(acc ^ static_cast<T>(1 << (p % 8)));
      }
      return acc;
    }
  }
  switch (op) {
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
      return T{};  // unreachable: bitwise ops only run for integral types
    case Op::kMin:
      return static_cast<T>(0 + elem + 1);
    case Op::kMax:
      return static_cast<T>(npes - 1 + elem + 1);
    case Op::kSum: {
      T acc{};
      for (int p = 0; p < npes; ++p) acc = static_cast<T>(acc + p + elem + 1);
      return acc;
    }
    case Op::kProd: {
      T acc{1};
      for (int p = 0; p < npes; ++p) acc = static_cast<T>(acc * (p + elem + 1));
      return acc;
    }
  }
  return T{};
}

template <typename T>
void fill_source(T* src, int nelems, Op op, int me) {
  for (int i = 0; i < nelems; ++i) {
    switch (op) {
      case Op::kAnd:
        src[i] = static_cast<T>(0b1100 | (1 << (me % 2)));
        break;
      case Op::kOr:
      case Op::kXor:
        src[i] = static_cast<T>(1 << (me % 8));
        break;
      default:
        src[i] = static_cast<T>(me + i + 1);
        break;
    }
  }
}

template <typename T, typename Fn>
void run_reduce_case(Op op, Fn&& api_call) {
  constexpr int kNpes = 5;
  constexpr int kElems = 6;
  tshmem::run_spmd(tilesim::tile_gx36(), kNpes, [&](Context& ctx) {
    auto* psync = ctx.shmalloc_n<long>(api::SHMEM_REDUCE_SYNC_SIZE);
    auto* pwrk = ctx.shmalloc_n<T>(api::SHMEM_REDUCE_MIN_WRKDATA_SIZE);
    auto* src = ctx.shmalloc_n<T>(kElems);
    auto* dst = ctx.shmalloc_n<T>(kElems);
    fill_source(src, kElems, op, ctx.my_pe());
    ctx.barrier_all();
    api_call(dst, src, kElems, 0, 0, kNpes, pwrk, psync);
    ctx.barrier_all();
    for (int i = 0; i < kElems; ++i) {
      if constexpr (std::is_floating_point_v<T>) {
        ASSERT_NEAR(static_cast<double>(dst[i]),
                    static_cast<double>(expected_reduce<T>(op, kNpes, i)),
                    1e-6)
            << "elem " << i;
      } else {
        ASSERT_EQ(dst[i], expected_reduce<T>(op, kNpes, i)) << "elem " << i;
      }
    }
    ctx.shfree(dst);
    ctx.shfree(src);
    ctx.shfree(pwrk);
    ctx.shfree(psync);
  });
}

#define TSHMEM_REDUCE_BITWISE_TEST(T, NAME)                                  \
  TEST(ReduceMatrix, NAME##_bitwise) {                                       \
    run_reduce_case<T>(Op::kAnd, [](T* d, T* s, int n, int a, int b, int c,  \
                                    T* w, long* p) {                         \
      api::shmem_##NAME##_and_to_all(d, s, n, a, b, c, w, p);                \
    });                                                                      \
    run_reduce_case<T>(Op::kOr, [](T* d, T* s, int n, int a, int b, int c,   \
                                   T* w, long* p) {                          \
      api::shmem_##NAME##_or_to_all(d, s, n, a, b, c, w, p);                 \
    });                                                                      \
    run_reduce_case<T>(Op::kXor, [](T* d, T* s, int n, int a, int b, int c,  \
                                    T* w, long* p) {                         \
      api::shmem_##NAME##_xor_to_all(d, s, n, a, b, c, w, p);                \
    });                                                                      \
  }

#define TSHMEM_REDUCE_ARITH_TEST(T, NAME)                                    \
  TEST(ReduceMatrix, NAME##_arith) {                                         \
    run_reduce_case<T>(Op::kMin, [](T* d, T* s, int n, int a, int b, int c,  \
                                    T* w, long* p) {                         \
      api::shmem_##NAME##_min_to_all(d, s, n, a, b, c, w, p);                \
    });                                                                      \
    run_reduce_case<T>(Op::kMax, [](T* d, T* s, int n, int a, int b, int c,  \
                                    T* w, long* p) {                         \
      api::shmem_##NAME##_max_to_all(d, s, n, a, b, c, w, p);                \
    });                                                                      \
    run_reduce_case<T>(Op::kSum, [](T* d, T* s, int n, int a, int b, int c,  \
                                    T* w, long* p) {                         \
      api::shmem_##NAME##_sum_to_all(d, s, n, a, b, c, w, p);                \
    });                                                                      \
    run_reduce_case<T>(Op::kProd, [](T* d, T* s, int n, int a, int b, int c, \
                                     T* w, long* p) {                        \
      api::shmem_##NAME##_prod_to_all(d, s, n, a, b, c, w, p);               \
    });                                                                      \
  }

TSHMEM_REDUCE_BITWISE_TEST(short, short)
TSHMEM_REDUCE_BITWISE_TEST(int, int)
TSHMEM_REDUCE_BITWISE_TEST(long, long)
TSHMEM_REDUCE_BITWISE_TEST(long long, longlong)
TSHMEM_REDUCE_ARITH_TEST(short, short)
TSHMEM_REDUCE_ARITH_TEST(int, int)
TSHMEM_REDUCE_ARITH_TEST(long, long)
TSHMEM_REDUCE_ARITH_TEST(long long, longlong)
TSHMEM_REDUCE_ARITH_TEST(float, float)
TSHMEM_REDUCE_ARITH_TEST(double, double)
TSHMEM_REDUCE_ARITH_TEST(long double, longdouble)
#undef TSHMEM_REDUCE_BITWISE_TEST
#undef TSHMEM_REDUCE_ARITH_TEST

// --- randomized active-set collective sweep --------------------------------------

// One job, many collectives over randomized active sets: every broadcast /
// fcollect / reduce must deliver correct contents regardless of the set's
// start, stride, size, or the algorithm chosen. All PEs share the RNG
// stream, so the schedule agrees without communication.
TEST(ActiveSetCollectiveProperty, RandomizedSetsAllAlgorithms) {
  constexpr int kNpes = 12;
  Runtime rt(tilesim::tile_gx36());
  rt.run(kNpes, [](Context& ctx) {
    constexpr int kElems = 9;
    long* src = ctx.shmalloc_n<long>(kElems);
    long* dst = ctx.shmalloc_n<long>(static_cast<std::size_t>(kNpes) * kElems);
    tshmem_util::Xoshiro256 rng(555);
    for (int round = 0; round < 25; ++round) {
      // Random legal active set within kNpes PEs.
      const int log_stride = static_cast<int>(rng.below(3));
      const int stride = 1 << log_stride;
      const int max_size = (kNpes - 1) / stride + 1;
      const int size = 2 + static_cast<int>(rng.below(
                               static_cast<std::uint64_t>(max_size - 1)));
      const int start = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(kNpes - (size - 1) * stride)));
      const ActiveSet as{start, log_stride, size};
      const int kind = static_cast<int>(rng.below(3));
      const int root_idx = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(size)));
      const bool alt_algo = rng.below(2) == 1;

      for (int i = 0; i < kElems; ++i) {
        src[i] = 1000L * ctx.my_pe() + round * 10 + i;
      }
      ctx.barrier_all();
      if (!as.contains(ctx.my_pe())) {
        ctx.harness_sync();
        continue;
      }
      switch (kind) {
        case 0: {  // broadcast
          const auto algo =
              alt_algo ? tshmem::BcastAlgo::kBinomial : tshmem::BcastAlgo::kPull;
          ctx.broadcast(dst, src, kElems * sizeof(long), root_idx, as, algo);
          if (ctx.my_pe() != as.pe_at(root_idx)) {
            for (int i = 0; i < kElems; ++i) {
              ASSERT_EQ(dst[i], 1000L * as.pe_at(root_idx) + round * 10 + i)
                  << "round " << round;
            }
          }
          break;
        }
        case 1: {  // fcollect
          const auto algo =
              alt_algo ? tshmem::CollectAlgo::kRing : tshmem::CollectAlgo::kNaive;
          ctx.fcollect(dst, src, kElems * sizeof(long), as, algo);
          for (int idx = 0; idx < size; ++idx) {
            for (int i = 0; i < kElems; ++i) {
              ASSERT_EQ(dst[idx * kElems + i],
                        1000L * as.pe_at(idx) + round * 10 + i)
                  << "round " << round;
            }
          }
          break;
        }
        default: {  // sum reduction
          const auto algo = alt_algo ? tshmem::ReduceAlgo::kRecursiveDoubling
                                     : tshmem::ReduceAlgo::kNaive;
          ctx.reduce(dst, src, kElems, tshmem::RedOp::kSum, as, algo);
          for (int i = 0; i < kElems; ++i) {
            long expect = 0;
            for (int idx = 0; idx < size; ++idx) {
              expect += 1000L * as.pe_at(idx) + round * 10 + i;
            }
            ASSERT_EQ(dst[i], expect) << "round " << round;
          }
          break;
        }
      }
      ctx.harness_sync();
    }
    ctx.shfree(dst);
    ctx.shfree(src);
  });
}

// --- randomized put/get content property ---------------------------------------

TEST(PutGetProperty, RandomOffsetsSizesAndPeers) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(4, [](Context& ctx) {
    constexpr std::size_t kArena = 64 * 1024;
    auto* arena = static_cast<std::uint8_t*>(ctx.shmalloc(kArena));
    for (std::size_t i = 0; i < kArena; ++i) {
      arena[i] = static_cast<std::uint8_t>(ctx.my_pe());
    }
    ctx.barrier_all();
    tshmem_util::Xoshiro256 rng(77);  // same stream on every PE
    for (int round = 0; round < 60; ++round) {
      // One PE writes a random span into a random peer each round; all PEs
      // agree on the schedule because the RNG stream is shared.
      const int writer = static_cast<int>(rng.below(4));
      const int reader = static_cast<int>(rng.below(4));
      const std::size_t off = rng.below(kArena / 2);
      const std::size_t len = 1 + rng.below(kArena / 2 - 1);
      const auto fill = static_cast<std::uint8_t>(rng.below(256));
      if (ctx.my_pe() == writer) {
        std::vector<std::uint8_t> data(len, fill);
        ctx.put(arena + off, data.data(), len, reader);
      }
      ctx.barrier_all();
      if (ctx.my_pe() == reader) {
        for (std::size_t i = 0; i < len; ++i) {
          ASSERT_EQ(arena[off + i], fill) << "round " << round;
        }
      }
      ctx.barrier_all();
    }
    ctx.shfree(arena);
  });
}

}  // namespace
