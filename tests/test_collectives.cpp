// Tests for collectives: broadcast (push/pull/binomial), collect/fcollect
// (naive/ring), and reductions (naive/recursive-doubling) across element
// types, operators, active sets, and PE counts.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::ActiveSet;
using tshmem::BcastAlgo;
using tshmem::CollectAlgo;
using tshmem::Context;
using tshmem::RedOp;
using tshmem::ReduceAlgo;
using tshmem::Runtime;

// --- broadcast -----------------------------------------------------------------

struct BcastCase {
  BcastAlgo algo;
  int npes;
  int root_index;
};

class BroadcastTest : public ::testing::TestWithParam<BcastCase> {};

TEST_P(BroadcastTest, DeliversRootDataToAllMembers) {
  const auto p = GetParam();
  Runtime rt(tilesim::tile_gx36());
  rt.run(p.npes, [&](Context& ctx) {
    const ActiveSet as{0, 0, p.npes};
    const int root = as.pe_at(p.root_index);
    int* data = ctx.shmalloc_n<int>(128);
    for (int i = 0; i < 128; ++i) {
      data[i] = ctx.my_pe() == root ? 9000 + i : -1;
    }
    ctx.barrier_all();
    ctx.broadcast(data, data, 128 * sizeof(int), p.root_index, as, p.algo);
    ctx.barrier_all();
    if (ctx.my_pe() == root) {
      // OpenSHMEM: the root's target is not written by broadcast.
      for (int i = 0; i < 128; ++i) EXPECT_EQ(data[i], 9000 + i);
    } else {
      for (int i = 0; i < 128; ++i) EXPECT_EQ(data[i], 9000 + i);
    }
    ctx.shfree(data);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSweep, BroadcastTest,
    ::testing::Values(BcastCase{BcastAlgo::kPush, 2, 0},
                      BcastCase{BcastAlgo::kPush, 7, 3},
                      BcastCase{BcastAlgo::kPush, 16, 0},
                      BcastCase{BcastAlgo::kPull, 2, 1},
                      BcastCase{BcastAlgo::kPull, 9, 4},
                      BcastCase{BcastAlgo::kPull, 16, 0},
                      BcastCase{BcastAlgo::kBinomial, 2, 0},
                      BcastCase{BcastAlgo::kBinomial, 8, 5},
                      BcastCase{BcastAlgo::kBinomial, 13, 7},
                      BcastCase{BcastAlgo::kBinomial, 16, 15}));

TEST(Broadcast, SeparateTargetAndSourceBuffers) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(5, [](Context& ctx) {
    double* src = ctx.shmalloc_n<double>(32);
    double* dst = ctx.shmalloc_n<double>(32);
    for (int i = 0; i < 32; ++i) {
      src[i] = ctx.my_pe() == 2 ? i * 1.5 : -1.0;
      dst[i] = -2.0;
    }
    ctx.barrier_all();
    ctx.broadcast(dst, src, 32 * sizeof(double), 2, ctx.world(),
                  BcastAlgo::kPull);
    ctx.barrier_all();
    if (ctx.my_pe() != 2) {
      for (int i = 0; i < 32; ++i) EXPECT_EQ(dst[i], i * 1.5);
    } else {
      for (int i = 0; i < 32; ++i) EXPECT_EQ(dst[i], -2.0);  // untouched
    }
    ctx.shfree(dst);
    ctx.shfree(src);
  });
}

TEST(Broadcast, ActiveSetSubsetUntouchedOutside) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(8, [](Context& ctx) {
    const ActiveSet evens{0, 1, 4};  // 0, 2, 4, 6
    long* data = ctx.shmalloc_n<long>(8);
    for (int i = 0; i < 8; ++i) data[i] = ctx.my_pe() == 0 ? 500 + i : -1;
    ctx.barrier_all();
    if (evens.contains(ctx.my_pe())) {
      ctx.broadcast(data, data, 8 * sizeof(long), 0, evens, BcastAlgo::kPull);
    }
    ctx.harness_sync();
    if (evens.contains(ctx.my_pe()) && ctx.my_pe() != 0) {
      for (int i = 0; i < 8; ++i) EXPECT_EQ(data[i], 500 + i);
    } else if (!evens.contains(ctx.my_pe())) {
      for (int i = 0; i < 8; ++i) EXPECT_EQ(data[i], -1);
    }
    ctx.harness_sync();
    ctx.shfree(data);
  });
}

TEST(Broadcast, Validation) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(4, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(4);
    ctx.barrier_all();
    EXPECT_THROW(
        ctx.broadcast(buf, buf, 16, 7, ctx.world(), BcastAlgo::kPull),
        std::out_of_range);
    if (ctx.my_pe() >= 2) {
      // Non-members of {0,0,2} must be rejected before any communication.
      EXPECT_THROW(ctx.broadcast(buf, buf, 16, 0, ActiveSet{0, 0, 2},
                                 BcastAlgo::kPull),
                   std::invalid_argument);
    }
    ctx.barrier_all();
    ctx.shfree(buf);
  });
}

TEST(Broadcast, PushSerializesOnRootInVirtualTime) {
  // Fig 9 vs Fig 10 mechanism: the push root's elapsed time grows with the
  // member count, while pull members work concurrently.
  Runtime rt(tilesim::tile_gx36());
  constexpr std::size_t kBytes = 256 * 1024;
  auto root_elapsed = [&](BcastAlgo algo, int npes) {
    tilesim::ps_t elapsed = 0;
    rt.run(npes, [&](Context& ctx) {
      auto* buf = static_cast<std::byte*>(ctx.shmalloc(kBytes));
      ctx.barrier_all();
      ctx.harness_sync_reset();
      const auto t0 = ctx.clock().now();
      ctx.broadcast(buf, buf, kBytes, 0, ctx.world(), algo);
      if (ctx.my_pe() == 0) elapsed = ctx.clock().now() - t0;
      ctx.harness_sync();
      ctx.shfree(buf);
    });
    return elapsed;
  };
  const auto push8 = root_elapsed(BcastAlgo::kPush, 8);
  const auto push16 = root_elapsed(BcastAlgo::kPush, 16);
  EXPECT_NEAR(static_cast<double>(push16) / static_cast<double>(push8),
              15.0 / 7.0, 0.3);  // root cost ~ (n-1) puts
  const auto pull8 = root_elapsed(BcastAlgo::kPull, 8);
  const auto pull16 = root_elapsed(BcastAlgo::kPull, 16);
  // Pull's wall time grows only through contention, much slower than 2x.
  EXPECT_LT(static_cast<double>(pull16) / static_cast<double>(pull8), 1.8);
  EXPECT_LT(pull16, push16);
}

// --- fcollect / collect ---------------------------------------------------------

struct CollectCase {
  CollectAlgo algo;
  int npes;
};

class FcollectTest : public ::testing::TestWithParam<CollectCase> {};

TEST_P(FcollectTest, ConcatenatesFixedBlocksInPeOrder) {
  const auto p = GetParam();
  Runtime rt(tilesim::tile_gx36());
  rt.run(p.npes, [&](Context& ctx) {
    constexpr int kElems = 16;
    const int n = ctx.num_pes();
    int* src = ctx.shmalloc_n<int>(kElems);
    int* dst = ctx.shmalloc_n<int>(static_cast<std::size_t>(n) * kElems);
    for (int i = 0; i < kElems; ++i) src[i] = ctx.my_pe() * 1000 + i;
    ctx.barrier_all();
    ctx.fcollect(dst, src, kElems * sizeof(int), ctx.world(), p.algo);
    ctx.barrier_all();
    for (int pe = 0; pe < n; ++pe) {
      for (int i = 0; i < kElems; ++i) {
        ASSERT_EQ(dst[pe * kElems + i], pe * 1000 + i)
            << "pe=" << pe << " i=" << i << " on " << ctx.my_pe();
      }
    }
    ctx.shfree(dst);
    ctx.shfree(src);
  });
}

INSTANTIATE_TEST_SUITE_P(AlgoSweep, FcollectTest,
                         ::testing::Values(CollectCase{CollectAlgo::kNaive, 1},
                                           CollectCase{CollectAlgo::kNaive, 2},
                                           CollectCase{CollectAlgo::kNaive, 6},
                                           CollectCase{CollectAlgo::kNaive, 16},
                                           CollectCase{CollectAlgo::kRing, 2},
                                           CollectCase{CollectAlgo::kRing, 6},
                                           CollectCase{CollectAlgo::kRing, 16}));

TEST(Collect, VariableSizedContributions) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(6, [](Context& ctx) {
    const int n = ctx.num_pes();
    // PE p contributes p+1 ints.
    const int mine = ctx.my_pe() + 1;
    const int total = n * (n + 1) / 2;
    int* src = ctx.shmalloc_n<int>(static_cast<std::size_t>(n));
    int* dst = ctx.shmalloc_n<int>(static_cast<std::size_t>(total));
    for (int i = 0; i < mine; ++i) src[i] = ctx.my_pe() * 100 + i;
    ctx.barrier_all();
    ctx.collect(dst, src, static_cast<std::size_t>(mine) * sizeof(int),
                ctx.world());
    ctx.barrier_all();
    int off = 0;
    for (int pe = 0; pe < n; ++pe) {
      for (int i = 0; i < pe + 1; ++i) {
        ASSERT_EQ(dst[off], pe * 100 + i) << "pe=" << pe << " i=" << i;
        ++off;
      }
    }
    EXPECT_EQ(off, total);
    ctx.shfree(dst);
    ctx.shfree(src);
  });
}

TEST(Collect, ZeroSizedContributionAllowed) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(4, [](Context& ctx) {
    int* src = ctx.shmalloc_n<int>(4);
    int* dst = ctx.shmalloc_n<int>(16);
    const std::size_t mine = ctx.my_pe() == 2 ? 0 : sizeof(int);
    if (mine > 0) src[0] = ctx.my_pe();
    ctx.barrier_all();
    ctx.collect(dst, src, mine, ctx.world());
    ctx.barrier_all();
    EXPECT_EQ(dst[0], 0);
    EXPECT_EQ(dst[1], 1);
    EXPECT_EQ(dst[2], 3);  // PE 2 contributed nothing
    ctx.shfree(dst);
    ctx.shfree(src);
  });
}

TEST(Collect, RingRequiresFixedSizes) {
  Runtime rt(tilesim::tile_gx36());
  EXPECT_THROW(rt.run(2,
                      [](Context& ctx) {
                        int* b = ctx.shmalloc_n<int>(4);
                        ctx.collect(b, b, 4, ctx.world(), CollectAlgo::kRing);
                      }),
               std::invalid_argument);
}

TEST(Fcollect, ActiveSetSubset) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(9, [](Context& ctx) {
    const ActiveSet odds{1, 1, 4};  // PEs 1, 3, 5, 7
    long* src = ctx.shmalloc_n<long>(2);
    long* dst = ctx.shmalloc_n<long>(8);
    src[0] = ctx.my_pe() * 10;
    src[1] = ctx.my_pe() * 10 + 1;
    ctx.barrier_all();
    if (odds.contains(ctx.my_pe())) {
      ctx.fcollect(dst, src, 2 * sizeof(long), odds);
      for (int idx = 0; idx < 4; ++idx) {
        const int pe = odds.pe_at(idx);
        EXPECT_EQ(dst[idx * 2], pe * 10);
        EXPECT_EQ(dst[idx * 2 + 1], pe * 10 + 1);
      }
    }
    ctx.harness_sync();
    ctx.shfree(dst);
    ctx.shfree(src);
  });
}

// --- reductions -----------------------------------------------------------------

struct ReduceCase {
  ReduceAlgo algo;
  int npes;
};

class ReduceTest : public ::testing::TestWithParam<ReduceCase> {};

TEST_P(ReduceTest, IntSumMatchesClosedForm) {
  const auto p = GetParam();
  Runtime rt(tilesim::tile_gx36());
  rt.run(p.npes, [&](Context& ctx) {
    constexpr int kElems = 37;  // deliberately not chunk-aligned
    const int n = ctx.num_pes();
    int* src = ctx.shmalloc_n<int>(kElems);
    int* dst = ctx.shmalloc_n<int>(kElems);
    for (int i = 0; i < kElems; ++i) src[i] = ctx.my_pe() + i;
    ctx.barrier_all();
    ctx.reduce(dst, src, kElems, RedOp::kSum, ctx.world(), p.algo);
    ctx.barrier_all();
    const int pe_sum = n * (n - 1) / 2;
    for (int i = 0; i < kElems; ++i) {
      ASSERT_EQ(dst[i], pe_sum + i * n) << "i=" << i;
    }
    ctx.shfree(dst);
    ctx.shfree(src);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSweep, ReduceTest,
    ::testing::Values(ReduceCase{ReduceAlgo::kNaive, 1},
                      ReduceCase{ReduceAlgo::kNaive, 2},
                      ReduceCase{ReduceAlgo::kNaive, 7},
                      ReduceCase{ReduceAlgo::kNaive, 16},
                      ReduceCase{ReduceAlgo::kRecursiveDoubling, 2},
                      ReduceCase{ReduceAlgo::kRecursiveDoubling, 5},
                      ReduceCase{ReduceAlgo::kRecursiveDoubling, 8},
                      ReduceCase{ReduceAlgo::kRecursiveDoubling, 16}));

TEST(Reduce, AllOperatorsOnInts) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(4, [](Context& ctx) {
    int* src = ctx.shmalloc_n<int>(4);
    int* dst = ctx.shmalloc_n<int>(4);
    const int me = ctx.my_pe();
    for (int i = 0; i < 4; ++i) src[i] = me + i + 1;  // 1..7 range
    ctx.barrier_all();

    ctx.reduce(dst, src, 4, RedOp::kMin, ctx.world());
    for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], i + 1);  // PE 0's values
    ctx.barrier_all();

    ctx.reduce(dst, src, 4, RedOp::kMax, ctx.world());
    for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], 3 + i + 1);
    ctx.barrier_all();

    ctx.reduce(dst, src, 4, RedOp::kProd, ctx.world());
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(dst[i], (i + 1) * (i + 2) * (i + 3) * (i + 4));
    }
    ctx.barrier_all();

    // Bitwise ops.
    for (int i = 0; i < 4; ++i) src[i] = 1 << me;
    ctx.barrier_all();
    ctx.reduce(dst, src, 4, RedOp::kOr, ctx.world());
    for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], 0b1111);
    ctx.barrier_all();
    ctx.reduce(dst, src, 4, RedOp::kXor, ctx.world());
    for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], 0b1111);
    ctx.barrier_all();
    for (int i = 0; i < 4; ++i) src[i] = 0b1100 | (1 << me);
    ctx.barrier_all();
    ctx.reduce(dst, src, 4, RedOp::kAnd, ctx.world());
    for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], 0b1100);
    ctx.barrier_all();
    ctx.shfree(dst);
    ctx.shfree(src);
  });
}

TEST(Reduce, FloatAndDoubleSum) {
  Runtime rt(tilesim::tile_pro64());
  rt.run(6, [](Context& ctx) {
    double* src = ctx.shmalloc_n<double>(8);
    double* dst = ctx.shmalloc_n<double>(8);
    for (int i = 0; i < 8; ++i) src[i] = 0.25 * ctx.my_pe() + i;
    ctx.barrier_all();
    ctx.reduce(dst, src, 8, RedOp::kSum, ctx.world());
    for (int i = 0; i < 8; ++i) {
      EXPECT_NEAR(dst[i], 0.25 * 15 + 6.0 * i, 1e-9);
    }
    ctx.barrier_all();
    ctx.shfree(dst);
    ctx.shfree(src);
  });
}

TEST(Reduce, ActiveSetExcludesOthers) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(8, [](Context& ctx) {
    const ActiveSet evens{0, 1, 4};
    int* src = ctx.shmalloc_n<int>(1);
    int* dst = ctx.shmalloc_n<int>(1);
    *src = 1;
    *dst = -7;
    ctx.barrier_all();
    if (evens.contains(ctx.my_pe())) {
      ctx.reduce(dst, src, 1, RedOp::kSum, evens);
      EXPECT_EQ(*dst, 4);
    }
    ctx.harness_sync();
    if (!evens.contains(ctx.my_pe())) {
      EXPECT_EQ(*dst, -7);
    }
    ctx.harness_sync();
    ctx.shfree(dst);
    ctx.shfree(src);
  });
}

TEST(Reduce, BitwiseOnFloatThrows) {
  Runtime rt(tilesim::tile_gx36());
  EXPECT_THROW(
      rt.run(2,
             [](Context& ctx) {
               float* b = ctx.shmalloc_n<float>(1);
               ctx.reduce(b, b, 1, RedOp::kXor, ctx.world());
             }),
      std::invalid_argument);
}

TEST(Reduce, LargeArrayCrossesChunkBoundaries) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(3, [](Context& ctx) {
    constexpr int kElems = 5000;  // > 4096-byte chunk
    long* src = ctx.shmalloc_n<long>(kElems);
    long* dst = ctx.shmalloc_n<long>(kElems);
    for (int i = 0; i < kElems; ++i) src[i] = ctx.my_pe() * kElems + i;
    ctx.barrier_all();
    ctx.reduce(dst, src, kElems, RedOp::kSum, ctx.world());
    for (int i = 0; i < kElems; ++i) {
      ASSERT_EQ(dst[i], 3L * i + 3L * kElems) << i;
    }
    ctx.barrier_all();
    ctx.shfree(dst);
    ctx.shfree(src);
  });
}

TEST(Reduce, NaiveAggregateIsFlatInTileCount) {
  // Fig 12's shape: serialized reduction keeps aggregate bandwidth flat as
  // tiles increase.
  Runtime rt(tilesim::tile_gx36());
  constexpr std::size_t kElems = 64 * 1024 / sizeof(int);
  auto aggregate_mbps = [&](int npes) {
    double out = 0;
    rt.run(npes, [&](Context& ctx) {
      int* src = ctx.shmalloc_n<int>(kElems);
      int* dst = ctx.shmalloc_n<int>(kElems);
      ctx.barrier_all();
      ctx.harness_sync_reset();
      const auto t0 = ctx.clock().now();
      ctx.reduce(dst, src, kElems, RedOp::kSum, ctx.world());
      ctx.barrier_all();
      if (ctx.my_pe() == 0) {
        const auto dt = ctx.clock().now() - t0;
        out = tshmem_util::bandwidth_mbps(
            static_cast<std::uint64_t>(npes) * kElems * sizeof(int), dt);
      }
      ctx.harness_sync();
      ctx.shfree(dst);
      ctx.shfree(src);
    });
    return out;
  };
  const double at8 = aggregate_mbps(8);
  const double at32 = aggregate_mbps(32);
  EXPECT_NEAR(at32 / at8, 1.0, 0.25);  // flat
}

TEST(Reduce, RecursiveDoublingBeatsNaiveInVirtualTime) {
  // The §IV-E extension exists to beat the serialized design.
  Runtime rt(tilesim::tile_gx36());
  constexpr std::size_t kElems = 32 * 1024 / sizeof(int);
  auto elapsed = [&](ReduceAlgo algo) {
    tilesim::ps_t out = 0;
    rt.run(16, [&](Context& ctx) {
      int* src = ctx.shmalloc_n<int>(kElems);
      int* dst = ctx.shmalloc_n<int>(kElems);
      ctx.barrier_all();
      ctx.harness_sync_reset();
      const auto t0 = ctx.clock().now();
      ctx.reduce(dst, src, kElems, RedOp::kSum, ctx.world(), algo);
      ctx.barrier_all();
      if (ctx.my_pe() == 0) out = ctx.clock().now() - t0;
      ctx.harness_sync();
      ctx.shfree(dst);
      ctx.shfree(src);
    });
    return out;
  };
  EXPECT_LT(elapsed(ReduceAlgo::kRecursiveDoubling),
            elapsed(ReduceAlgo::kNaive));
}

}  // namespace
