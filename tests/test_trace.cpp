// Tests for the virtual-time tracer: recording, ordering, CSV output, the
// RAII span helper, and the Device charge hooks.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/device.hpp"
#include "sim/trace.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tilesim::Device;
using tilesim::Tile;
using tilesim::TraceEvent;
using tilesim::TraceKind;
using tilesim::TraceRecorder;
using tilesim::TraceSpan;

TEST(Trace, RecordAndSortedRetrieval) {
  TraceRecorder rec(4);
  rec.record(2, TraceKind::kCopy, 100, 200, "b");
  rec.record(0, TraceKind::kCompute, 50, 80, "a");
  rec.record(1, TraceKind::kCompute, 100, 150, "c");
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].label, "a");        // earliest begin first
  EXPECT_EQ(events[1].tile, 1);           // tie on begin: lower tile first
  EXPECT_EQ(events[2].tile, 2);
  EXPECT_EQ(rec.event_count(), 3u);
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(Trace, Validation) {
  EXPECT_THROW(TraceRecorder{0}, std::invalid_argument);
  TraceRecorder rec(2);
  EXPECT_THROW(rec.record(2, TraceKind::kCopy, 0, 1), std::out_of_range);
  EXPECT_THROW(rec.record(-1, TraceKind::kCopy, 0, 1), std::out_of_range);
}

TEST(Trace, CsvFormat) {
  TraceRecorder rec(1);
  rec.record(0, TraceKind::kCopy, 10, 30, "memcpy");
  std::ostringstream os;
  rec.dump_csv(os);
  EXPECT_EQ(os.str(),
            "tile,kind,begin_ps,end_ps,duration_ps,label\n"
            "0,copy,10,30,20,memcpy\n");
}

TEST(Trace, CsvEscapingRfc4180) {
  // Plain fields pass through untouched.
  EXPECT_EQ(tilesim::csv_escape("memcpy"), "memcpy");
  EXPECT_EQ(tilesim::csv_escape(""), "");
  // Separators, quotes, and line breaks force quoting; embedded quotes
  // are doubled.
  EXPECT_EQ(tilesim::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(tilesim::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(tilesim::csv_escape("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(tilesim::csv_escape("cr\rhere"), "\"cr\rhere\"");

  TraceRecorder rec(1);
  rec.record(0, TraceKind::kCustom, 0, 5, "put, pe=1 \"bounce\"");
  std::ostringstream os;
  rec.dump_csv(os);
  EXPECT_EQ(os.str(),
            "tile,kind,begin_ps,end_ps,duration_ps,label\n"
            "0,custom,0,5,5,\"put, pe=1 \"\"bounce\"\"\"\n");
}

TEST(Trace, KindNames) {
  EXPECT_STREQ(tilesim::to_string(TraceKind::kCompute), "compute");
  EXPECT_STREQ(tilesim::to_string(TraceKind::kCopy), "copy");
  EXPECT_STREQ(tilesim::to_string(TraceKind::kMessage), "message");
  EXPECT_STREQ(tilesim::to_string(TraceKind::kBarrier), "barrier");
  EXPECT_STREQ(tilesim::to_string(TraceKind::kCollective), "collective");
  EXPECT_STREQ(tilesim::to_string(TraceKind::kCustom), "custom");
}

TEST(Trace, DeviceChargesAreRecordedWhileAttached) {
  Device device(tilesim::tile_gx36());
  TraceRecorder rec(device.tile_count());
  device.attach_tracer(&rec);
  device.run(2, [&](Tile& tile) {
    tile.charge_int_ops(100);
    tilesim::CopyRequest req;
    req.bytes = 4096;
    tile.charge_copy(req);
  });
  device.attach_tracer(nullptr);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);  // 2 tiles x (compute + copy)
  int computes = 0, copies = 0;
  for (const TraceEvent& e : events) {
    EXPECT_GT(e.end_ps, e.begin_ps);
    computes += e.kind == TraceKind::kCompute;
    copies += e.kind == TraceKind::kCopy;
  }
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(copies, 2);
  // Detached: no further recording.
  device.run(1, [&](Tile& tile) { tile.charge_int_ops(5); });
  EXPECT_EQ(rec.event_count(), 4u);
}

TEST(Trace, SpanRecordsScopeWithClock) {
  Device device(tilesim::tile_gx36());
  TraceRecorder rec(device.tile_count());
  device.run(1, [&](Tile& tile) {
    tile.charge_int_ops(10);
    {
      TraceSpan span(&rec, tile.id(), tile.clock(), TraceKind::kCustom,
                     "phase1");
      tile.charge_int_ops(1000);
    }
  });
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].label, "phase1");
  EXPECT_EQ(events[0].begin_ps, 10'000u);  // after the first charge
  EXPECT_EQ(events[0].end_ps, 10'000u + 1'000'000u);
}

TEST(Trace, NullRecorderSpanIsNoop) {
  Device device(tilesim::tile_gx36());
  device.run(1, [&](Tile& tile) {
    TraceSpan span(nullptr, 0, tile.clock(), TraceKind::kCustom, "ignored");
    tile.charge_int_ops(1);
  });
}

TEST(Trace, TshmemJobProducesTimeline) {
  tshmem::Runtime rt(tilesim::tile_gx36());
  TraceRecorder rec(rt.device().tile_count());
  rt.device().attach_tracer(&rec);
  rt.run(4, [](tshmem::Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(1024);
    ctx.barrier_all();
    ctx.put(buf, buf, 1024 * sizeof(int), (ctx.my_pe() + 1) % 4);
    ctx.barrier_all();
    ctx.shfree(buf);
  });
  rt.device().attach_tracer(nullptr);
  EXPECT_GE(rec.event_count(), 4u);  // at least each PE's put copy
  bool saw_copy = false;
  bool saw_message = false;  // barrier tokens ride the UDN
  for (const TraceEvent& e : rec.events()) {
    saw_copy |= e.kind == TraceKind::kCopy;
    saw_message |= e.kind == TraceKind::kMessage;
  }
  EXPECT_TRUE(saw_copy);
  EXPECT_TRUE(saw_message);
}

}  // namespace
