// Integration shape tests: the qualitative relationships the paper's
// evaluation establishes, asserted end to end through the full stack
// (library + device model), loosely enough to survive recalibration but
// tightly enough to catch regressions that would invalidate the
// reproduction. Each test names the figure it guards.
#include <gtest/gtest.h>

#include <mutex>

#include "apps/cbir.hpp"
#include "apps/fft.hpp"
#include "tmc/barrier.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"
#include "util/stats.hpp"

namespace {

using tshmem::Context;
using tshmem::Runtime;

double putget_bw(Runtime& rt, std::size_t bytes) {
  double mbps = 0;
  rt.run(2, [&](Context& ctx) {
    auto* buf = static_cast<std::byte*>(ctx.shmalloc(bytes));
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      const auto t0 = ctx.clock().now();
      ctx.put(buf, buf, bytes, 1);
      mbps = tshmem_util::bandwidth_mbps(bytes, ctx.clock().now() - t0);
    }
    ctx.barrier_all();
    ctx.shfree(buf);
  });
  return mbps;
}

TEST(PaperShapes, Fig3CacheTransitionsOnGxFlatOnPro) {
  Runtime gx(tilesim::tile_gx36());
  Runtime pro(tilesim::tile_pro64());
  // Gx: pronounced decline from L1-resident to memory-resident transfers.
  const double gx_small = putget_bw(gx, 16 * 1024);
  const double gx_big = putget_bw(gx, 8 << 20);
  EXPECT_GT(gx_small, 5 * gx_big);
  // Pro: nearly flat.
  const double pro_small = putget_bw(pro, 16 * 1024);
  const double pro_big = putget_bw(pro, 8 << 20);
  EXPECT_LT(pro_small, 2 * pro_big);
  // The crossover: Pro wins only at memory-to-memory sizes.
  EXPECT_GT(gx_small, pro_small);
  EXPECT_GT(pro_big, gx_big * 0.95);
}

TEST(PaperShapes, Fig4GxSlowerForNeighborsDespiteFasterClock) {
  // The §III-C observation: longer setup/teardown on the 64-bit switching
  // fabric makes the Gx's short-distance latency worse than the Pro's.
  tilesim::Device gx(tilesim::tile_gx36());
  tilesim::Device pro(tilesim::tile_pro64());
  tmc::UdnFabric gx_udn(gx), pro_udn(pro);
  EXPECT_GT(gx_udn.wire_latency_ps(14, 13, 1),
            pro_udn.wire_latency_ps(9, 10, 1));
  // But the faster per-hop rate wins for corner-to-corner routes.
  EXPECT_LT(gx_udn.wire_latency_ps(0, 35, 1),
            pro_udn.wire_latency_ps(0, 45, 1));
}

TEST(PaperShapes, Fig8BarrierLatencyGrowsLinearlyInTiles) {
  Runtime rt(tilesim::tile_gx36());
  std::vector<double> tiles, latency;
  for (int n = 4; n <= 36; n += 8) {
    std::mutex mu;
    tilesim::ps_t worst = 0;
    rt.run(n, [&](Context& ctx) {
      ctx.barrier_all();
      ctx.harness_sync_reset();
      const auto t0 = ctx.clock().now();
      ctx.barrier_all();
      const auto dt = ctx.clock().now() - t0;
      std::scoped_lock lk(mu);
      worst = std::max(worst, dt);
    });
    tiles.push_back(n);
    latency.push_back(tshmem_util::ps_to_us(worst));
  }
  // Linear fit must explain the data well (token chain = 2(n-1) links).
  EXPECT_GT(tshmem_util::correlation(tiles, latency), 0.999);
  const double slope = tshmem_util::linear_slope(tiles, latency);
  EXPECT_NEAR(slope, 2 * 0.052, 0.02);  // ~2 links/tile * ~52 ns/link in us
}

TEST(PaperShapes, Fig9Vs10PushFlatPullScales) {
  Runtime rt(tilesim::tile_gx36());
  constexpr std::size_t kBytes = 32 * 1024;
  auto aggregate = [&](tshmem::BcastAlgo algo, int n) {
    std::mutex mu;
    tilesim::ps_t slowest = 0;
    rt.run(n, [&](Context& ctx) {
      auto* buf = static_cast<std::byte*>(ctx.shmalloc(kBytes));
      ctx.barrier_all();
      ctx.broadcast(buf, buf, kBytes, 0, ctx.world(), algo);
      ctx.harness_sync_reset();
      const auto t0 = ctx.clock().now();
      ctx.broadcast(buf, buf, kBytes, 0, ctx.world(), algo);
      const auto dt = ctx.clock().now() - t0;
      {
        std::scoped_lock lk(mu);
        slowest = std::max(slowest, dt);
      }
      ctx.harness_sync();
      ctx.shfree(buf);
    });
    return tshmem_util::bandwidth_mbps(
        static_cast<std::uint64_t>(n - 1) * kBytes, slowest);
  };
  const double push8 = aggregate(tshmem::BcastAlgo::kPush, 8);
  const double push32 = aggregate(tshmem::BcastAlgo::kPush, 32);
  const double pull8 = aggregate(tshmem::BcastAlgo::kPull, 8);
  const double pull32 = aggregate(tshmem::BcastAlgo::kPull, 32);
  EXPECT_NEAR(push32 / push8, 1.0, 0.15);  // Fig 9: flat
  EXPECT_GT(pull32 / pull8, 1.7);          // Fig 10: scales
  EXPECT_GT(pull32, 4 * push32);
}

TEST(PaperShapes, Fig13SpeedupPlateausOnGxNotOnPro) {
  // Small instance keeps the test quick: the plateau mechanism (serialized
  // final transpose) is size-independent.
  auto speedup32 = [&](const tilesim::DeviceConfig& cfg) {
    Runtime rt(cfg);
    tilesim::ps_t t1 = 0, t32 = 0;
    for (const int n : {1, 32}) {
      rt.run(n, [&](Context& ctx) {
        const auto r = apps::fft2d_run(ctx, 256, 1);
        if (ctx.my_pe() == 0) (n == 1 ? t1 : t32) = r.timing.total_ps;
      });
    }
    return static_cast<double>(t1) / static_cast<double>(t32);
  };
  const double gx = speedup32(tilesim::tile_gx36());
  const double pro = speedup32(tilesim::tile_pro64());
  EXPECT_LT(gx, 8.0);   // plateaued well below 32
  EXPECT_GT(pro, 1.7 * gx);  // software-FP Pro keeps scaling
}

TEST(PaperShapes, Fig14SpeedupInBandOnBothDevices) {
  apps::cbir::Params p;
  p.images = 640;
  auto speedup = [&](const tilesim::DeviceConfig& cfg, int tiles) {
    Runtime rt(cfg);
    tilesim::ps_t t1 = 0, tn = 0;
    for (const int n : {1, tiles}) {
      rt.run(n, [&](Context& ctx) {
        const auto r = apps::cbir::run_query(ctx, p);
        if (ctx.my_pe() == 0) (n == 1 ? t1 : tn) = r.elapsed_ps;
      });
    }
    return static_cast<double>(t1) / static_cast<double>(tn);
  };
  for (const auto* cfg : tilesim::all_devices()) {
    const double s32 = speedup(*cfg, 32);
    EXPECT_GT(s32, 20.0) << cfg->name;
    EXPECT_LT(s32, 30.0) << cfg->name;
    const double s8 = speedup(*cfg, 8);
    EXPECT_GT(s8, 7.0) << cfg->name;  // near-linear in the low range
  }
}

TEST(PaperShapes, Fig5SpinVsSyncGapIsOrdersOfMagnitude) {
  for (const auto* cfg : tilesim::all_devices()) {
    const auto spin = tmc::SpinBarrier::model_latency_ps(*cfg, 36);
    const auto sync = tmc::SyncBarrier::model_latency_ps(*cfg, 36);
    EXPECT_GT(sync, 15 * spin) << cfg->name;
  }
}

}  // namespace
