// Tests for the UDN model: header encoding, queue semantics, payload
// limits, flow control, and — critically — the wire-latency model against
// the Table III derivation.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/device.hpp"
#include "tmc/udn.hpp"

namespace {

using tilesim::Device;
using tilesim::Tile;
using tmc::UdnFabric;
using tmc::UdnHeader;

TEST(UdnHeader, EncodeDecodeRoundTrip) {
  for (const UdnHeader h : {UdnHeader{0, 0, 1}, UdnHeader{35, 3, 127},
                            UdnHeader{63, 2, 64}}) {
    EXPECT_EQ(UdnHeader::decode(h.encode()), h);
  }
}

class UdnTest : public ::testing::Test {
 protected:
  Device device_{tilesim::tile_gx36()};
  UdnFabric udn_{device_};
};

TEST_F(UdnTest, WireLatencyNeighbors) {
  // Table III: Gx neighbors ~21-22 ns (setup 21 ns + 1 hop @ 1 ns).
  EXPECT_EQ(udn_.wire_latency_ps(14, 13, 1), 22'000u);
  EXPECT_EQ(udn_.wire_latency_ps(14, 15, 1), 22'000u);
  EXPECT_EQ(udn_.wire_latency_ps(14, 8, 1), 22'000u);
  EXPECT_EQ(udn_.wire_latency_ps(14, 20, 1), 22'000u);
}

TEST_F(UdnTest, WireLatencySideToSideAndCorners) {
  // Side-to-side: 5 hops -> ~26 ns; corners: 10 hops -> ~31 ns on Gx.
  EXPECT_EQ(udn_.wire_latency_ps(6, 11, 1), 26'000u);
  EXPECT_EQ(udn_.wire_latency_ps(1, 31, 1), 26'000u);
  EXPECT_EQ(udn_.wire_latency_ps(0, 35, 1), 31'000u);
}

TEST_F(UdnTest, PayloadWordsPipelineAtOneWordPerCycle) {
  const auto one = udn_.wire_latency_ps(0, 1, 1);
  const auto four = udn_.wire_latency_ps(0, 1, 4);
  EXPECT_EQ(four - one, 3u * tilesim::tile_gx36().cycle_ps());
}

TEST_F(UdnTest, SelfSendIsSetupOnly) {
  EXPECT_EQ(udn_.wire_latency_ps(7, 7, 1),
            tilesim::tile_gx36().udn_setup_teardown_ps);
}

TEST(UdnPro64, VerticalBiasAndTurnCost) {
  Device device(tilesim::tile_pro64());
  UdnFabric udn(device);
  // Pro: setup 18 ns, 1.429 ns/hop; vertical routes ~1 ns faster; turning
  // routes +1 ns (Table III: 18/19 ns neighbors, 33 ns corners).
  const auto right = udn.wire_latency_ps(9, 10, 1);
  const auto down = udn.wire_latency_ps(9, 17, 1);  // 8-wide mesh
  EXPECT_NEAR(static_cast<double>(right) / 1000.0, 19.4, 0.1);
  EXPECT_NEAR(static_cast<double>(down) / 1000.0, 18.4, 0.1);
  // 6x6-area corner on the 8x8 mesh: virtual 0 -> virtual 35 = physical 45.
  const auto corner = udn.wire_latency_ps(0, 45, 1);
  EXPECT_NEAR(static_cast<double>(corner) / 1000.0, 33.3, 0.2);
}

TEST_F(UdnTest, SendRecvDeliversPayload) {
  device_.run(2, [&](Tile& tile) {
    if (tile.id() == 0) {
      const std::uint64_t words[3] = {11, 22, 33};
      udn_.send(tile, 1, 0, words);
    } else {
      const auto pkt = udn_.recv(tile, 0);
      EXPECT_EQ(pkt.src_tile, 0);
      EXPECT_EQ(pkt.header.dest_tile, 1);
      EXPECT_EQ(pkt.header.payload_words, 3);
      ASSERT_EQ(pkt.payload.size(), 3u);
      EXPECT_EQ(pkt.payload[0], 11u);
      EXPECT_EQ(pkt.payload[2], 33u);
    }
  });
}

TEST_F(UdnTest, RecvAdvancesClockToArrival) {
  device_.run(2, [&](Tile& tile) {
    if (tile.id() == 0) {
      tile.clock().advance(5'000'000);  // sender is 5 us ahead
      udn_.send1(tile, 1, 0, 99);
    } else {
      const auto pkt = udn_.recv(tile, 0);
      // Receiver was at ~0; its clock must jump to the arrival time.
      EXPECT_EQ(tile.clock().now(), pkt.arrival_ps);
      EXPECT_GE(pkt.arrival_ps, 5'000'000u + udn_.wire_latency_ps(0, 1, 1));
    }
  });
}

TEST_F(UdnTest, HalvedRoundTripEqualsWireLatency) {
  // The paper's Fig 4 measurement methodology: one-way latency is half the
  // send+ack round trip. In the model this recovers wire latency exactly
  // (the 1-cycle sender injection overlaps the flight of the ack).
  device_.run(2, [&](Tile& tile) {
    const auto wire = udn_.wire_latency_ps(0, 1, 1);
    if (tile.id() == 0) {
      const auto t0 = tile.clock().now();
      udn_.send1(tile, 1, 0, 1);
      (void)udn_.recv(tile, 0);
      const auto rtt = tile.clock().now() - t0;
      EXPECT_EQ(rtt / 2, wire);
    } else {
      (void)udn_.recv(tile, 0);
      udn_.send1(tile, 0, 0, 2);
    }
  });
}

TEST_F(UdnTest, QueuesAreIndependent) {
  device_.run(2, [&](Tile& tile) {
    if (tile.id() == 0) {
      udn_.send1(tile, 1, 2, 100);  // queue 2
      udn_.send1(tile, 1, 1, 200);  // queue 1
    } else {
      // Receive in the opposite order of sending: queues don't interfere.
      const auto q1 = udn_.recv(tile, 1);
      const auto q2 = udn_.recv(tile, 2);
      EXPECT_EQ(q1.payload[0], 200u);
      EXPECT_EQ(q2.payload[0], 100u);
    }
  });
}

TEST_F(UdnTest, FifoOrderWithinQueue) {
  device_.run(2, [&](Tile& tile) {
    if (tile.id() == 0) {
      for (std::uint64_t i = 0; i < 20; ++i) udn_.send1(tile, 1, 0, i);
    } else {
      for (std::uint64_t i = 0; i < 20; ++i) {
        EXPECT_EQ(udn_.recv(tile, 0).payload[0], i);
      }
    }
  });
}

TEST_F(UdnTest, TryRecvNonBlocking) {
  device_.run(1, [&](Tile& tile) {
    EXPECT_FALSE(udn_.try_recv(tile, 0).has_value());
    udn_.send1(tile, 0, 0, 7);  // self-send
    const auto pkt = udn_.try_recv(tile, 0);
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->payload[0], 7u);
  });
}

TEST_F(UdnTest, OversizedPayloadThrows) {
  device_.run(1, [&](Tile& tile) {
    std::vector<std::uint64_t> words(128, 0);
    EXPECT_THROW(udn_.send(tile, 0, 0, words), std::invalid_argument);
    EXPECT_THROW(udn_.send(tile, 0, 0, {}), std::invalid_argument);
  });
}

TEST_F(UdnTest, BadDestinationOrQueueThrows) {
  device_.run(1, [&](Tile& tile) {
    EXPECT_THROW(udn_.send1(tile, 99, 0, 1), std::invalid_argument);
    EXPECT_THROW(udn_.send1(tile, -1, 0, 1), std::invalid_argument);
    EXPECT_THROW(udn_.send1(tile, 0, 4, 1), std::invalid_argument);
    EXPECT_THROW((void)udn_.recv(tile, 7), std::invalid_argument);
  });
}

TEST_F(UdnTest, FlowControlBlocksWhenQueueFull) {
  // A queue holds at most 127 words; a sender stalls until the receiver
  // drains. The receiver sleeps first so the sender demonstrably blocks.
  device_.run(2, [&](Tile& tile) {
    if (tile.id() == 0) {
      std::vector<std::uint64_t> words(100, 1);
      udn_.send(tile, 1, 0, words);  // fills most of the queue
      udn_.send(tile, 1, 0, words);  // must block until drained
    } else {
      // Deliberate delay so the sender demonstrably blocks; not a wait
      // loop, so the Watchdog wrapper does not apply.
      std::this_thread::sleep_for(  // tshmem-lint: allow(R002)
          std::chrono::milliseconds(20));
      EXPECT_EQ(udn_.queued_words(1, 0), 100u);
      (void)udn_.recv(tile, 0);
      (void)udn_.recv(tile, 0);
      EXPECT_EQ(udn_.queued_words(1, 0), 0u);
    }
  });
}

TEST_F(UdnTest, EffectiveThroughputMatchesPaperTable) {
  // Paper §III-C: neighbor/side/corner throughput 2900/2500/2000 Mbps on
  // the Gx (8-byte word over the one-way latency).
  auto mbits = [&](int src, int dst) {
    const double ns = static_cast<double>(udn_.wire_latency_ps(src, dst, 1)) /
                      1000.0;
    return 8.0 * 8.0 / ns * 1000.0;  // bits / ns -> Mbps
  };
  EXPECT_NEAR(mbits(14, 13), 2900, 150);
  EXPECT_NEAR(mbits(6, 11), 2500, 100);
  EXPECT_NEAR(mbits(0, 35), 2000, 100);
}

}  // namespace
