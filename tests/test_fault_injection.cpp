// Deterministic fault-injection tests (robustness tentpole): plan parsing,
// bit-identical replay of a (seed, plan) pair, zero-virtual-cost hardening
// with an empty plan, bounded retry/backoff recovery, graceful degradation
// of NBI under descriptor faults, symmetric heap-pressure denial, and the
// host-time watchdog on stuck collectives. See docs/ROBUSTNESS.md.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"
#include "util/error.hpp"

namespace {

using tilesim::FaultEvent;
using tilesim::FaultPlan;
using tilesim::ps_t;
using tshmem::Context;
using tshmem::Errc;
using tshmem::Error;
using tshmem::Runtime;
using tshmem::RuntimeOptions;

// ===========================================================================
// Plan parsing
// ===========================================================================

TEST(FaultPlan, ParseRoundTripsEveryKey) {
  const FaultPlan p = FaultPlan::parse(
      "seed=42,udn_drop=0.01,udn_corrupt=0.02,udn_delay=0.03:50000,"
      "udn_retries=5,udn_backoff=3000,dma_stall=0.04:100000,dma_fail=0.05,"
      "tile_stall=0.06:1000000,cmem_fail=0.07,heap_cap=1048576");
  EXPECT_EQ(p.seed, 42u);
  EXPECT_DOUBLE_EQ(p.udn_drop_rate, 0.01);
  EXPECT_DOUBLE_EQ(p.udn_corrupt_rate, 0.02);
  EXPECT_DOUBLE_EQ(p.udn_delay_rate, 0.03);
  EXPECT_EQ(p.udn_delay_ps, 50'000u);
  EXPECT_EQ(p.udn_max_retries, 5);
  EXPECT_EQ(p.udn_backoff_base_ps, 3'000u);
  EXPECT_DOUBLE_EQ(p.dma_stall_rate, 0.04);
  EXPECT_EQ(p.dma_stall_ps, 100'000u);
  EXPECT_DOUBLE_EQ(p.dma_desc_fail_rate, 0.05);
  EXPECT_DOUBLE_EQ(p.tile_stall_rate, 0.06);
  EXPECT_EQ(p.tile_stall_ps, 1'000'000u);
  EXPECT_DOUBLE_EQ(p.cmem_map_fail_rate, 0.07);
  EXPECT_EQ(p.heap_cap_bytes, std::size_t{1} << 20);
  EXPECT_FALSE(p.empty());
}

TEST(FaultPlan, EmptyAndMalformedSpecs) {
  EXPECT_TRUE(FaultPlan{}.empty());
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("seed=7").empty());  // seed alone = no faults
  EXPECT_THROW(FaultPlan::parse("bogus_key=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("udn_drop=notanumber"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("udn_drop"), std::invalid_argument);
}

TEST(FaultPlan, RejectsOutOfRangeAndNaNRates) {
  // Rates above 1 or below 0 are spec errors, not clamped probabilities.
  EXPECT_THROW(FaultPlan::parse("udn_drop=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("udn_drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("shard_stall=2.0:1000"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("shard_crash=1.0001"),
               std::invalid_argument);
  // "nan" parses via std::stod and compares false against both bounds; a
  // naively written range check would let it poison every verdict hash.
  EXPECT_THROW(FaultPlan::parse("udn_drop=nan"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("replica_flap=nan:1000"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("udn_drop=inf"), std::invalid_argument);
  // The boundary values themselves are legal.
  EXPECT_DOUBLE_EQ(FaultPlan::parse("udn_drop=0.0").udn_drop_rate, 0.0);
  EXPECT_DOUBLE_EQ(FaultPlan::parse("udn_drop=1.0").udn_drop_rate, 1.0);
  // The thrown message names the offending entry.
  try {
    FaultPlan::parse("seed=3,udn_drop=1.5");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("udn_drop=1.5"),
              std::string::npos);
  }
}

TEST(FaultPlan, RejectsNegativeMagnitudes) {
  // std::stoull silently wraps "-50" to a huge unsigned value: a negative
  // magnitude must be a parse error, not a ~2^64 ps stall.
  EXPECT_THROW(FaultPlan::parse("udn_delay=0.1:-50000"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("tile_stall=0.1:-1"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("replica_flap=0.1:-2000"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("heap_cap=-1048576"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed=-7"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("shard_crash_shard=-2"),
               std::invalid_argument);
  try {
    FaultPlan::parse("udn_delay=0.1:-50000");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("udn_delay=0.1:-50000"),
              std::string::npos);
  }
}

TEST(FaultPlan, ParsesCrashAndFlapSites) {
  const FaultPlan p = FaultPlan::parse(
      "seed=9,shard_crash=0.5,shard_crash_shard=1,"
      "replica_flap=0.25:40000000000,replica_flap_shard=3");
  EXPECT_EQ(p.seed, 9u);
  EXPECT_DOUBLE_EQ(p.shard_crash_rate, 0.5);
  EXPECT_EQ(p.shard_crash_shard, 1);
  EXPECT_DOUBLE_EQ(p.replica_flap_rate, 0.25);
  EXPECT_EQ(p.replica_flap_down_ps, 40'000'000'000);
  EXPECT_EQ(p.replica_flap_shard, 3);
  EXPECT_FALSE(p.empty());
  // describe() round-trips through parse() for the new keys.
  const FaultPlan q = FaultPlan::parse(p.describe());
  EXPECT_EQ(p, q);
}

TEST(FaultPlan, CrashAndFlapVerdictsAreDeterministicAndTargeted) {
  FaultPlan plan = FaultPlan::parse(
      "seed=11,shard_crash=0.3,shard_crash_shard=2,replica_flap=0.4:5000");
  tilesim::FaultEngine a(plan);
  tilesim::FaultEngine b(plan);
  for (int replica = 0; replica < 4; ++replica) {
    for (int i = 0; i < 64; ++i) {
      const ps_t now = static_cast<ps_t>(i) * 100;
      const bool crash = a.shard_crash(replica, now);
      EXPECT_EQ(crash, b.shard_crash(replica, now));
      // The targeted crash site never fires off-target, but still
      // consumes its ordinal there (stream alignment).
      if (replica != 2) EXPECT_FALSE(crash);
      EXPECT_EQ(a.replica_flap(replica, now), b.replica_flap(replica, now));
    }
  }
  EXPECT_GT(a.event_count(), 0u);
  EXPECT_EQ(a.event_count(), b.event_count());
  EXPECT_EQ(a.events(), b.events());
  // A fired flap reports the plan's down time.
  bool fired = false;
  tilesim::FaultEngine c(plan);
  for (int i = 0; i < 256 && !fired; ++i) {
    const ps_t down = c.replica_flap(0, 0);
    if (down > 0) {
      EXPECT_EQ(down, 5000);
      fired = true;
    }
  }
  EXPECT_TRUE(fired);
}

// ===========================================================================
// Deterministic replay
// ===========================================================================

namespace {
// A mixed workload touching every hardened layer: UDN barriers and
// point-to-point puts, NBI traffic, interrupt-serviced static transfers
// (bounce buffers -> cmem maps), and collective allocations.
void mixed_workload(Context& ctx) {
  const int npes = ctx.num_pes();
  int* dyn = ctx.shmalloc_n<int>(256);
  int* stat = ctx.static_sym<int>("fault_mix", 64);
  for (int i = 0; i < 64; ++i) stat[i] = ctx.my_pe();
  ctx.barrier_all();
  for (int round = 0; round < 4; ++round) {
    const int peer = (ctx.my_pe() + 1 + round) % npes;
    std::vector<int> src(256, ctx.my_pe() * 100 + round);
    ctx.put(dyn, src.data(), 256 * sizeof(int), peer);
    ctx.barrier_all();
    ctx.put_nbi(dyn, src.data(), 128 * sizeof(int), peer);
    ctx.quiet();
    ctx.put(stat, stat, 32 * sizeof(int), peer);  // interrupt/bounce path
    ctx.barrier_all();
  }
  ctx.shfree(dyn);
}

struct ReplayResult {
  std::vector<FaultEvent> events;
  obs::MetricsSnapshot metrics;
  std::vector<tilesim::ps_t> final_clocks;
};

ReplayResult run_replay(const FaultPlan& plan, int npes) {
  RuntimeOptions opts;
  opts.metrics = true;
  opts.fault_plan = plan;
  Runtime rt(tilesim::tile_gx36(), opts);
  ReplayResult r;
  r.final_clocks.assign(static_cast<std::size_t>(npes), 0);
  rt.run(npes, [&](Context& ctx) {
    mixed_workload(ctx);
    r.final_clocks[static_cast<std::size_t>(ctx.my_pe())] =
        ctx.clock().now();
  });
  if (rt.fault_engine() != nullptr) r.events = rt.fault_engine()->events();
  r.metrics = rt.metrics();
  return r;
}
}  // namespace

TEST(FaultReplay, SameSeedAndPlanReplaysBitIdentically) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=1234,udn_drop=0.05,udn_corrupt=0.03,udn_delay=0.1:20000,"
      "dma_stall=0.2:50000,dma_fail=0.1,tile_stall=0.1:100000,"
      "cmem_fail=0.2");
  const ReplayResult a = run_replay(plan, 4);
  const ReplayResult b = run_replay(plan, 4);
  EXPECT_FALSE(a.events.empty());  // the plan actually injected something
  EXPECT_EQ(a.events, b.events);   // identical injected-event log
  EXPECT_EQ(a.metrics, b.metrics);  // identical final metrics snapshot
  EXPECT_EQ(a.final_clocks, b.final_clocks);
}

TEST(FaultReplay, DifferentSeedsProduceDifferentLogs) {
  FaultPlan plan = FaultPlan::parse("udn_drop=0.1,udn_delay=0.2:30000");
  plan.seed = 1;
  const ReplayResult a = run_replay(plan, 4);
  plan.seed = 2;
  const ReplayResult b = run_replay(plan, 4);
  EXPECT_FALSE(a.events.empty());
  EXPECT_FALSE(b.events.empty());
  EXPECT_NE(a.events, b.events);
}

TEST(FaultReplay, HardeningWithEmptyPlanIsVirtualTimeNeutral) {
  // The zero-virtual-cost contract: watchdog armed + debug validation on +
  // empty plan must leave every PE's final virtual clock identical to the
  // stock configuration.
  auto final_clocks = [](const RuntimeOptions& opts) {
    Runtime rt(tilesim::tile_gx36(), opts);
    std::vector<tilesim::ps_t> clocks(4, 0);
    rt.run(4, [&](Context& ctx) {
      mixed_workload(ctx);
      clocks[static_cast<std::size_t>(ctx.my_pe())] = ctx.clock().now();
    });
    EXPECT_EQ(rt.fault_engine(), nullptr);  // empty plan attaches nothing
    return clocks;
  };
  RuntimeOptions stock;
  stock.watchdog_ms = 0;
  RuntimeOptions hardened;
  hardened.watchdog_ms = 60'000;
  hardened.debug_validation = true;
  EXPECT_EQ(final_clocks(stock), final_clocks(hardened));
}

// ===========================================================================
// Recovery and graceful degradation
// ===========================================================================

TEST(FaultRecovery, UdnDropsRecoveredByBoundedRetry) {
  RuntimeOptions opts;
  opts.metrics = true;
  opts.fault_plan = FaultPlan::parse("seed=7,udn_drop=0.2");
  Runtime rt(tilesim::tile_gx36(), opts);
  std::atomic<int> sum{0};
  rt.run(4, [&](Context& ctx) {
    int* v = ctx.shmalloc_n<int>(1);
    *v = 0;
    ctx.barrier_all();
    ctx.p(v, ctx.my_pe() + 1, (ctx.my_pe() + 1) % 4);
    ctx.barrier_all();
    sum.fetch_add(*v);
    ctx.shfree(v);
  });
  EXPECT_EQ(sum.load(), 1 + 2 + 3 + 4);  // every put delivered exactly once
  ASSERT_NE(rt.fault_engine(), nullptr);
  EXPECT_GT(rt.fault_engine()->event_count(), 0u);
  // Recovered drops show up in the recovery.* family, not as lost data.
  const obs::MetricsSnapshot snap = rt.metrics();
  std::uint64_t retries = 0, drops = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "recovery.udn.retries") retries += c.value;
    if (c.name == "fault.udn.drop") drops += c.value;
  }
  EXPECT_GT(drops, 0u);
  EXPECT_GE(retries, drops);  // every drop costs at least one retry
}

TEST(FaultRecovery, RetryExhaustionSurfacesErrorWithoutDeadlock) {
  RuntimeOptions opts;
  opts.fault_plan = FaultPlan::parse("udn_drop=1.0,udn_retries=3");
  opts.watchdog_ms = 2'000;  // unstick the receiving PE
  Runtime rt(tilesim::tile_gx36(), opts);
  try {
    rt.run(2, [](Context& ctx) { ctx.barrier_all(); });
    FAIL() << "barrier under 100% drop did not throw";
  } catch (const Error& e) {
    // The sender exhausts its retry budget; the peer may instead hit the
    // watchdog first depending on scheduling — both are structured errors.
    EXPECT_TRUE(e.code() == Errc::kRetriesExhausted ||
                e.code() == Errc::kWatchdogTimeout)
        << e.what();
  }
}

TEST(FaultRecovery, DmaDescriptorFailureDegradesToSynchronous) {
  RuntimeOptions opts;
  opts.metrics = true;
  opts.fault_plan = FaultPlan::parse("dma_fail=1.0");
  Runtime rt(tilesim::tile_gx36(), opts);
  rt.run(2, [](Context& ctx) {
    int* buf = ctx.shmalloc_n<int>(64);
    std::memset(buf, 0, 64 * sizeof(int));
    ctx.barrier_all();
    int src[64];
    for (int i = 0; i < 64; ++i) src[i] = 100 + i;
    ctx.put_nbi(buf, src, sizeof(src), 1 - ctx.my_pe());
    // Every descriptor post is rejected: the transfer completed
    // synchronously instead and nothing sits in the queue.
    EXPECT_EQ(ctx.nbi_pending(), 0u);
    ctx.quiet();
    ctx.barrier_all();
    for (int i = 0; i < 64; ++i) EXPECT_EQ(buf[i], 100 + i);
    ctx.shfree(buf);
  });
  const obs::MetricsSnapshot snap = rt.metrics();
  std::uint64_t fallbacks = 0, failures = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "recovery.nbi.sync_fallbacks") fallbacks += c.value;
    if (c.name == "fault.dma.desc_fail") failures += c.value;
  }
  EXPECT_EQ(fallbacks, 2u);  // one per PE
  EXPECT_EQ(failures, 2u);
}

TEST(FaultRecovery, HeapCapDenialIsSymmetricAndRecoverable) {
  RuntimeOptions opts;
  opts.metrics = true;
  opts.fault_plan = FaultPlan::parse("heap_cap=65536");
  Runtime rt(tilesim::tile_gx36(), opts);
  std::atomic<int> nulls{0};
  rt.run(4, [&](Context& ctx) {
    void* big = ctx.shmalloc(100 * 1024);  // over the injected cap
    if (big == nullptr) nulls.fetch_add(1);
    void* small = ctx.shmalloc(1024);  // under the cap: still works
    EXPECT_NE(small, nullptr);
    ctx.shfree(small);
  });
  EXPECT_EQ(nulls.load(), 4);  // denial identical on every PE
  ASSERT_NE(rt.fault_engine(), nullptr);
  std::uint64_t denials = 0;
  for (const FaultEvent& ev : rt.fault_engine()->events()) {
    if (ev.site == tilesim::FaultSite::kHeapCap) ++denials;
  }
  EXPECT_EQ(denials, 4u);
}

TEST(FaultRecovery, CmemMapFaultsRecoveredByBoundedRetry) {
  RuntimeOptions opts;
  opts.metrics = true;
  opts.fault_plan = FaultPlan::parse("seed=7,cmem_fail=0.2");
  Runtime rt(tilesim::tile_gx36(), opts);
  // Every job maps the symmetric partitions plus one bounce slot per PE
  // that runs a static-static transfer, so repeated jobs accumulate plenty
  // of opportunities for injected map faults to be retried.
  for (int job = 0; job < 8; ++job) {
    rt.run(2, [](Context& ctx) {
      int* stat = ctx.static_sym<int>("cmem_retry", 128);
      for (int i = 0; i < 128; ++i) stat[i] = ctx.my_pe() * 1000 + i;
      ctx.barrier_all();
      if (ctx.my_pe() == 0) {
        for (int i = 0; i < 4; ++i) {
          ctx.put(stat, stat, 128 * sizeof(int), 1);
        }
      }
      ctx.barrier_all();
      if (ctx.my_pe() == 1) {
        for (int i = 0; i < 128; ++i) EXPECT_EQ(stat[i], i);
      }
    });
  }
  ASSERT_NE(rt.fault_engine(), nullptr);
  std::uint64_t injected = 0;
  for (const FaultEvent& ev : rt.fault_engine()->events()) {
    if (ev.site == tilesim::FaultSite::kCmemMapFail) ++injected;
  }
  EXPECT_GT(injected, 0u);  // rate 0.2 over 16+ maps: faults fired...
  std::uint64_t retries = 0;
  for (const auto& c : rt.metrics().counters) {
    if (c.name == "recovery.cmem.map_retries") retries += c.value;
  }
  EXPECT_EQ(retries, injected);  // ...and every one was absorbed by a retry
}

TEST(FaultRecovery, PersistentCmemFailureSurfacesStructuredError) {
  RuntimeOptions opts;
  opts.fault_plan = FaultPlan::parse("cmem_fail=1.0");
  Runtime rt(tilesim::tile_gx36(), opts);
  try {
    rt.run(2, [](Context& ctx) { ctx.barrier_all(); });
    FAIL() << "persistent map failure did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kCmemMapFailed);
    EXPECT_NE(std::string(e.what()).find("cmem_map_failed"),
              std::string::npos);
  }
}

TEST(FaultRecovery, UdnDelayOnlyAddsVirtualTime) {
  // Delays slow virtual time but never lose data or change results.
  auto final_clock = [](const std::string& spec) {
    RuntimeOptions opts;
    if (!spec.empty()) opts.fault_plan = FaultPlan::parse(spec);
    Runtime rt(tilesim::tile_gx36(), opts);
    tilesim::ps_t out = 0;
    rt.run(2, [&](Context& ctx) {
      for (int i = 0; i < 8; ++i) ctx.barrier_all();
      if (ctx.my_pe() == 0) out = ctx.clock().now();
    });
    return out;
  };
  const tilesim::ps_t base = final_clock("");
  const tilesim::ps_t delayed = final_clock("udn_delay=1.0:500000");
  EXPECT_GT(delayed, base);
}

// ===========================================================================
// Watchdog
// ===========================================================================

TEST(Watchdog, FiresOnMismatchedBarrierNamingStuckPe) {
  RuntimeOptions opts;
  opts.watchdog_ms = 300;
  Runtime rt(tilesim::tile_gx36(), opts);
  try {
    rt.run(2, [](Context& ctx) {
      if (ctx.my_pe() == 0) ctx.barrier_all();  // PE 1 never arrives
    });
    FAIL() << "mismatched barrier did not trip the watchdog";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kWatchdogTimeout);
    const std::string what = e.what();
    EXPECT_NE(what.find("PE 0"), std::string::npos) << what;
    EXPECT_NE(what.find("stuck in"), std::string::npos) << what;
    // The diagnostic snapshot reports every PE's last operation.
    EXPECT_NE(what.find("per-PE diagnostic snapshot"), std::string::npos)
        << what;
    EXPECT_NE(what.find("op="), std::string::npos) << what;
  }
  // The runtime survives the aborted job.
  rt.run(2, [](Context& ctx) { ctx.barrier_all(); });
}

TEST(Watchdog, FiresOnWaitUntilThatCanNeverBeSatisfied) {
  RuntimeOptions opts;
  opts.watchdog_ms = 300;
  Runtime rt(tilesim::tile_gx36(), opts);
  try {
    rt.run(2, [](Context& ctx) {
      long* flag = ctx.shmalloc_n<long>(1);
      *flag = 0;
      ctx.barrier_all();
      if (ctx.my_pe() == 0) {
        ctx.wait(flag, 0L);  // nobody ever writes it
      } else {
        ctx.barrier_all();  // also stuck: PE 0 never joins
      }
    });
    FAIL() << "unsatisfiable wait did not trip the watchdog";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::kWatchdogTimeout);
  }
}

}  // namespace
