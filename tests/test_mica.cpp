// Tests for the MiCA accelerator model: CRC/cipher/RLE correctness, the
// shared-engine queuing model, offload-vs-software costs, and device gating.
#include <gtest/gtest.h>

#include <vector>

#include "sim/device.hpp"
#include "tmc/mica.hpp"
#include "util/rng.hpp"

namespace {

using tilesim::Device;
using tilesim::Tile;
using tmc::MicaEngine;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> out(n);
  tshmem_util::Xoshiro256 rng(seed);
  for (auto& b : out) b = static_cast<std::byte>(rng.below(256));
  return out;
}

class MicaTest : public ::testing::Test {
 protected:
  Device device_{tilesim::tile_gx36()};
  MicaEngine mica_{device_};
};

TEST(Mica, RequiresMicaCapableDevice) {
  Device pro(tilesim::tile_pro64());
  EXPECT_THROW(MicaEngine{pro}, std::invalid_argument);
}

TEST_F(MicaTest, Crc32KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const char* s = "123456789";
  std::vector<std::byte> data(9);
  for (int i = 0; i < 9; ++i) data[i] = static_cast<std::byte>(s[i]);
  device_.run(1, [&](Tile& tile) {
    EXPECT_EQ(mica_.crc32(tile, data), 0xCBF43926u);
    EXPECT_EQ(mica_.crc32_software(tile, data), 0xCBF43926u);
  });
}

TEST_F(MicaTest, CrcDetectsCorruption) {
  auto data = random_bytes(4096, 1);
  device_.run(1, [&](Tile& tile) {
    const auto before = mica_.crc32(tile, data);
    data[1000] ^= std::byte{1};
    EXPECT_NE(mica_.crc32(tile, data), before);
  });
}

TEST_F(MicaTest, CipherRoundTripAndKeySensitivity) {
  const auto original = random_bytes(1000, 2);  // odd tail (not /8)
  auto data = original;
  device_.run(1, [&](Tile& tile) {
    mica_.cipher(tile, data, 0xdeadbeef);
    EXPECT_NE(data, original);
    mica_.cipher(tile, data, 0xdeadbeef);  // XOR keystream: involutive
    EXPECT_EQ(data, original);
    mica_.cipher(tile, data, 0xdeadbeef);
    mica_.cipher(tile, data, 0xdeadbeee);  // wrong key
    EXPECT_NE(data, original);
  });
}

TEST_F(MicaTest, CipherSoftwareMatchesOffload) {
  auto a = random_bytes(512, 3);
  auto b = a;
  device_.run(1, [&](Tile& tile) {
    mica_.cipher(tile, a, 42);
    mica_.cipher_software(tile, b, 42);
    EXPECT_EQ(a, b);
  });
}

TEST_F(MicaTest, RleRoundTrip) {
  // Highly compressible input with runs.
  std::vector<std::byte> input(5000);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<std::byte>((i / 300) & 0xff);
  }
  std::vector<std::byte> compressed(2 * input.size());
  std::vector<std::byte> output(input.size());
  device_.run(1, [&](Tile& tile) {
    const std::size_t clen =
        mica_.compress(tile, input, compressed);
    EXPECT_LT(clen, input.size() / 10);  // long runs compress well
    const std::size_t dlen = mica_.decompress(
        tile, std::span<const std::byte>(compressed.data(), clen), output);
    EXPECT_EQ(dlen, input.size());
    EXPECT_EQ(output, input);
  });
}

TEST_F(MicaTest, RleWorstCaseAndErrors) {
  const auto incompressible = random_bytes(256, 4);
  std::vector<std::byte> small(100);
  std::vector<std::byte> big(600);
  device_.run(1, [&](Tile& tile) {
    EXPECT_THROW((void)mica_.compress(tile, incompressible, small),
                 std::length_error);
    const std::size_t clen = mica_.compress(tile, incompressible, big);
    EXPECT_LE(clen, 512u);  // worst case 2x
    // Malformed streams.
    std::vector<std::byte> odd(3);
    std::vector<std::byte> out(16);
    EXPECT_THROW((void)mica_.decompress(tile, odd, out),
                 std::invalid_argument);
    std::vector<std::byte> zero_run{std::byte{0}, std::byte{7}};
    EXPECT_THROW((void)mica_.decompress(tile, zero_run, out),
                 std::invalid_argument);
    std::vector<std::byte> overflow{std::byte{255}, std::byte{7}};
    std::vector<std::byte> tiny(8);
    EXPECT_THROW((void)mica_.decompress(tile, overflow, tiny),
                 std::invalid_argument);
  });
}

TEST_F(MicaTest, OffloadTimingMatchesModel) {
  const auto data = random_bytes(1 << 20, 5);
  device_.run(1, [&](Tile& tile) {
    const auto t0 = tile.clock().now();
    (void)mica_.crc32(tile, data);
    const auto dt = tile.clock().now() - t0;
    EXPECT_EQ(dt, mica_.offload_ps(data.size(), mica_.config().crc_gbps));
  });
}

TEST_F(MicaTest, SharedEngineSerializesConcurrentOffloads) {
  // Two tiles offload simultaneously: the later one's completion includes
  // the earlier one's service time (queuing at the shared accelerator).
  const auto data = random_bytes(1 << 20, 6);
  const auto service = mica_.offload_ps(data.size(), mica_.config().crc_gbps);
  std::atomic<std::uint64_t> total_wait{0};
  device_.run(2, [&](Tile& tile) {
    tile.device().host_sync();
    const auto t0 = tile.clock().now();
    (void)mica_.crc32(tile, data);
    total_wait.fetch_add(tile.clock().now() - t0);
    tile.device().host_sync();
  });
  // One caller waits ~1x service, the other ~2x (order varies with host
  // scheduling, the sum does not).
  EXPECT_EQ(total_wait.load(), 3 * service);
  EXPECT_EQ(mica_.operations_completed(), 2u);
}

TEST_F(MicaTest, OffloadBeatsSoftwareOnLargeBuffers) {
  const auto data = random_bytes(1 << 20, 7);
  device_.run(1, [&](Tile& tile) {
    const auto t0 = tile.clock().now();
    const auto hw = mica_.crc32(tile, data);
    const auto hw_time = tile.clock().now() - t0;
    const auto t1 = tile.clock().now();
    const auto sw = mica_.crc32_software(tile, data);
    const auto sw_time = tile.clock().now() - t1;
    EXPECT_EQ(hw, sw);
    EXPECT_GT(sw_time, 10 * hw_time);  // 6 ops/B at 1 GHz vs 60 Gbps
  });
}

}  // namespace
