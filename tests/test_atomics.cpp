// Tests for TSHMEM atomics: swap/cswap/fadd/finc/add/inc on dynamic and
// static symmetric objects, concurrency correctness, and cost behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::Context;
using tshmem::Runtime;

TEST(Atomics, SwapReturnsPrevious) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long* v = ctx.shmalloc_n<long>(1);
    *v = 111;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      const long old = ctx.swap(v, 222L, 1);
      EXPECT_EQ(old, 111);
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      EXPECT_EQ(*v, 222);
    }
    ctx.barrier_all();
    ctx.shfree(v);
  });
}

TEST(Atomics, FloatAndDoubleSwapBitExact) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    float* f = ctx.shmalloc_n<float>(1);
    double* d = ctx.shmalloc_n<double>(1);
    *f = 1.25f;
    *d = -8.5;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      EXPECT_EQ(ctx.swap(f, 9.75f, 1), 1.25f);
      EXPECT_EQ(ctx.swap(d, 3.5, 1), -8.5);
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      EXPECT_EQ(*f, 9.75f);
      EXPECT_EQ(*d, 3.5);
    }
    ctx.barrier_all();
    ctx.shfree(d);
    ctx.shfree(f);
  });
}

TEST(Atomics, CswapOnlyOnMatch) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    int* v = ctx.shmalloc_n<int>(1);
    *v = 10;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      EXPECT_EQ(ctx.cswap(v, 99, 20, 1), 10);  // mismatch: returns current
      EXPECT_EQ(ctx.cswap(v, 10, 20, 1), 10);  // match: swaps
      EXPECT_EQ(ctx.cswap(v, 10, 30, 1), 20);  // now mismatch again
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      EXPECT_EQ(*v, 20);
    }
    ctx.barrier_all();
    ctx.shfree(v);
  });
}

TEST(Atomics, FaddFincReturnOldValues) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long long* v = ctx.shmalloc_n<long long>(1);
    *v = 5;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      EXPECT_EQ(ctx.fadd(v, 10LL, 1), 5);
      EXPECT_EQ(ctx.finc(v, 1), 15);
      ctx.add(v, 100LL, 1);
      ctx.inc(v, 1);
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      EXPECT_EQ(*v, 117);
    }
    ctx.barrier_all();
    ctx.shfree(v);
  });
}

TEST(Atomics, ConcurrentFincsProduceUniqueTickets) {
  // The classic SHMEM idiom: a shared ticket counter.
  Runtime rt(tilesim::tile_gx36());
  std::mutex mu;
  std::set<long> tickets;
  rt.run(12, [&](Context& ctx) {
    long* counter = ctx.shmalloc_n<long>(1);
    if (ctx.my_pe() == 0) *counter = 0;
    ctx.barrier_all();
    for (int i = 0; i < 50; ++i) {
      const long t = ctx.finc(counter, 0);
      std::scoped_lock lk(mu);
      EXPECT_TRUE(tickets.insert(t).second) << "duplicate ticket " << t;
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      EXPECT_EQ(*counter, 600);
    }
    ctx.barrier_all();
    ctx.shfree(counter);
  });
  EXPECT_EQ(tickets.size(), 600u);
}

TEST(Atomics, ConcurrentAddsSumExactly) {
  Runtime rt(tilesim::tile_pro64());
  rt.run(16, [](Context& ctx) {
    long* acc = ctx.shmalloc_n<long>(1);
    if (ctx.my_pe() == 0) *acc = 0;
    ctx.barrier_all();
    for (int i = 0; i < 100; ++i) ctx.add(acc, 1L + ctx.my_pe(), 0);
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      EXPECT_EQ(*acc, 100L * (16 + 15 * 16 / 2));  // 100 * sum(1..16)
    }
    ctx.barrier_all();
    ctx.shfree(acc);
  });
}

TEST(Atomics, OnStaticSymmetricViaInterrupt) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long* stat = ctx.static_sym<long>("atomic_static");
    *stat = 7;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      EXPECT_EQ(ctx.fadd(stat, 3L, 1), 7);
      EXPECT_GE(ctx.runtime().interrupts().serviced(1), 1u);
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 1) {
      EXPECT_EQ(*stat, 10);
    }
    EXPECT_EQ(*ctx.static_sym<long>("atomic_static"), ctx.my_pe() == 1 ? 10 : 7);
    ctx.barrier_all();
  });
}

TEST(Atomics, StaticOnProThrows) {
  Runtime rt(tilesim::tile_pro64());
  rt.run(2, [](Context& ctx) {
    long* stat = ctx.static_sym<long>("pro_atomic");
    *stat = 0;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      EXPECT_THROW((void)ctx.fadd(stat, 1L, 1), std::runtime_error);
      (void)ctx.fadd(stat, 1L, 0);  // local static is fine
      EXPECT_EQ(*stat, 1);
    }
    ctx.barrier_all();
  });
}

TEST(Atomics, NonSymmetricTargetThrows) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long on_stack = 0;
    EXPECT_THROW((void)ctx.fadd(&on_stack, 1L, 1 - ctx.my_pe()),
                 std::invalid_argument);
    EXPECT_THROW((void)ctx.swap(&on_stack, 1L, 1 - ctx.my_pe()),
                 std::invalid_argument);
    ctx.barrier_all();
  });
}

TEST(Atomics, PeRangeValidated) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long* v = ctx.shmalloc_n<long>(1);
    EXPECT_THROW((void)ctx.fadd(v, 1L, 5), std::out_of_range);
    EXPECT_THROW((void)ctx.swap(v, 1L, -1), std::out_of_range);
    ctx.barrier_all();
    ctx.shfree(v);
  });
}

TEST(Atomics, RemoteCostsMoreThanLocal) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long* v = ctx.shmalloc_n<long>(1);
    *v = 0;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      const auto t0 = ctx.clock().now();
      ctx.add(v, 1L, 0);
      const auto local = ctx.clock().now() - t0;
      const auto t1 = ctx.clock().now();
      ctx.add(v, 1L, 1);
      const auto remote = ctx.clock().now() - t1;
      EXPECT_GT(remote, local);
    }
    ctx.barrier_all();
    ctx.shfree(v);
  });
}

TEST(Atomics, MixedSwapAndCswapRace) {
  // cswap-based lock-free stack push counter: verify linearizability of
  // outcome (total = pushes) under contention.
  Runtime rt(tilesim::tile_gx36());
  rt.run(8, [](Context& ctx) {
    int* top = ctx.shmalloc_n<int>(1);
    if (ctx.my_pe() == 0) *top = 0;
    ctx.barrier_all();
    int done = 0;
    while (done < 20) {
      const int cur = ctx.g(top, 0);
      if (ctx.cswap(top, cur, cur + 1, 0) == cur) ++done;
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      EXPECT_EQ(*top, 160);
    }
    ctx.barrier_all();
    ctx.shfree(top);
  });
}

}  // namespace
