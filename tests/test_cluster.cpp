// Tests for the multi-device TSHMEM cluster (the §VI future-work
// extension): global PE space, cross-device puts/gets over the mPIPE link,
// cluster-wide barriers and broadcasts, and timing relations (inter-device
// transfers are link-bound, intra-device ones are not).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "tshmem/cluster.hpp"

namespace {

using tshmem::Cluster;
using tshmem::ClusterContext;
using tshmem::ClusterOptions;

ClusterOptions small_opts() {
  ClusterOptions o;
  o.runtime.heap_per_pe = std::size_t{4} << 20;
  return o;
}

TEST(Cluster, RequiresMpipeDevice) {
  EXPECT_THROW(Cluster(tilesim::tile_pro64(), small_opts()),
               std::invalid_argument);
}

TEST(Cluster, GlobalPeNumbering) {
  Cluster cluster(tilesim::tile_gx36(), small_opts());
  std::atomic<long> sum{0};
  cluster.run(4, [&](ClusterContext& ctx) {
    EXPECT_EQ(ctx.global_npes(), 8);
    EXPECT_EQ(ctx.global_pe(),
              ctx.device_index() * 4 + ctx.local().my_pe());
    EXPECT_EQ(ctx.device_of(5), 1);
    EXPECT_EQ(ctx.local_pe_of(5), 1);
    sum.fetch_add(ctx.global_pe());
  });
  EXPECT_EQ(sum.load(), 28);  // 0+1+...+7
}

TEST(Cluster, CrossDevicePutRing) {
  Cluster cluster(tilesim::tile_gx36(), small_opts());
  cluster.run(3, [](ClusterContext& ctx) {
    const int g = ctx.global_pe();
    const int n = ctx.global_npes();
    const long token = g;
    long* slot = ctx.local().shmalloc_n<long>(1);
    *slot = -1;
    ctx.barrier_all();
    ctx.put(slot, &token, sizeof(long), (g + 1) % n);  // crosses at 2->3
    ctx.barrier_all();
    EXPECT_EQ(*slot, (g + n - 1) % n);
    ctx.barrier_all();
    ctx.local().shfree(slot);
  });
}

TEST(Cluster, CrossDeviceGet) {
  Cluster cluster(tilesim::tile_gx36(), small_opts());
  cluster.run(2, [](ClusterContext& ctx) {
    double* data = ctx.local().shmalloc_n<double>(64);
    for (int i = 0; i < 64; ++i) data[i] = ctx.global_pe() * 100.0 + i;
    ctx.barrier_all();
    const int partner = (ctx.global_pe() + 2) % 4;  // always other device
    std::vector<double> got(64);
    ctx.get(got.data(), data, 64 * sizeof(double), partner);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(got[i], partner * 100.0 + i);
    ctx.barrier_all();
    ctx.local().shfree(data);
  });
}

TEST(Cluster, BarrierIsClusterWideRendezvous) {
  Cluster cluster(tilesim::tile_gx36(), small_opts());
  std::atomic<int> arrivals{0};
  cluster.run(4, [&](ClusterContext& ctx) {
    for (int round = 1; round <= 5; ++round) {
      arrivals.fetch_add(1);
      ctx.barrier_all();
      EXPECT_GE(arrivals.load(), round * 8);
    }
  });
  EXPECT_EQ(arrivals.load(), 40);
}

TEST(Cluster, BroadcastFromEitherDevice) {
  Cluster cluster(tilesim::tile_gx36(), small_opts());
  for (const int root : {0, 5}) {
    cluster.run(3, [&](ClusterContext& ctx) {
      int* data = ctx.local().shmalloc_n<int>(256);
      for (int i = 0; i < 256; ++i) {
        data[i] = ctx.global_pe() == root ? 7000 + i : -1;
      }
      ctx.barrier_all();
      ctx.broadcast(data, data, 256 * sizeof(int), root);
      ctx.barrier_all();
      for (int i = 0; i < 256; ++i) {
        ASSERT_EQ(data[i], 7000 + i)
            << "gpe=" << ctx.global_pe() << " root=" << root;
      }
      ctx.local().shfree(data);
    });
  }
}

TEST(Cluster, BroadcastLargerThanJumboFrame) {
  Cluster cluster(tilesim::tile_gx36(), small_opts());
  constexpr std::size_t kBytes = 40'000;  // > 4 jumbo chunks
  cluster.run(2, [&](ClusterContext& ctx) {
    auto* data = static_cast<std::uint8_t*>(ctx.local().shmalloc(kBytes));
    for (std::size_t i = 0; i < kBytes; ++i) {
      data[i] = ctx.global_pe() == 0 ? static_cast<std::uint8_t>(i * 31) : 0;
    }
    ctx.barrier_all();
    ctx.broadcast(data, data, kBytes, 0);
    ctx.barrier_all();
    for (std::size_t i = 0; i < kBytes; ++i) {
      ASSERT_EQ(data[i], static_cast<std::uint8_t>(i * 31));
    }
    ctx.local().shfree(data);
  });
}

TEST(Cluster, InterDeviceTransfersAreLinkBound) {
  Cluster cluster(tilesim::tile_gx36(), small_opts());
  constexpr std::size_t kBytes = 1 << 20;
  tilesim::ps_t intra = 0, inter = 0;
  cluster.run(2, [&](ClusterContext& ctx) {
    auto* buf = static_cast<std::byte*>(ctx.local().shmalloc(kBytes));
    ctx.barrier_all();
    if (ctx.global_pe() == 0) {
      auto t0 = ctx.local().clock().now();
      ctx.put(buf, buf, kBytes, 1);  // same device
      intra = ctx.local().clock().now() - t0;
      t0 = ctx.local().clock().now();
      ctx.put(buf, buf, kBytes, 2);  // other device, over the 10G link
      inter = ctx.local().clock().now() - t0;
    }
    ctx.barrier_all();
    ctx.local().shfree(buf);
  });
  // 1 MB at 10 Gbps is ~839 us of serialization; the Gx's 1 MB
  // shared-memory copy runs at ~1000 MB/s (~1.05 ms) — the 10GbE link is
  // actually *faster* than DDC-region copies at this size, which is part
  // of why the paper considers mPIPE-based expansion attractive. Check the
  // link-rate arithmetic exactly and the intra-device value against the
  // memory model.
  const double inter_us = tshmem_util::ps_to_us(inter);
  EXPECT_NEAR(inter_us, 839.0 + 1.0, 15.0);  // serialization + pipeline
  EXPECT_NEAR(tshmem_util::ps_to_us(intra), 1049.0, 30.0);
  // At small sizes the pipeline latency dominates and the link loses badly.
  tilesim::ps_t small_inter = 0, small_intra = 0;
  cluster.run(2, [&](ClusterContext& ctx) {
    auto* buf = static_cast<std::byte*>(ctx.local().shmalloc(64));
    ctx.barrier_all();
    if (ctx.global_pe() == 0) {
      auto t0 = ctx.local().clock().now();
      ctx.put(buf, buf, 64, 1);
      small_intra = ctx.local().clock().now() - t0;
      t0 = ctx.local().clock().now();
      ctx.put(buf, buf, 64, 2);
      small_inter = ctx.local().clock().now() - t0;
    }
    ctx.barrier_all();
    ctx.local().shfree(buf);
  });
  EXPECT_GT(small_inter, 3 * small_intra);
}

TEST(Cluster, StaticObjectsAreNotCrossDeviceAccessible) {
  Cluster cluster(tilesim::tile_gx36(), small_opts());
  cluster.run(2, [](ClusterContext& ctx) {
    int* stat = ctx.local().static_sym<int>("cluster_static", 4);
    int v = 1;
    if (ctx.global_pe() == 0) {
      EXPECT_THROW(ctx.put(stat, &v, sizeof(int), 2), std::invalid_argument);
    }
    ctx.barrier_all();
  });
}

TEST(Cluster, ValidatesGlobalPeRange) {
  Cluster cluster(tilesim::tile_gx36(), small_opts());
  cluster.run(2, [](ClusterContext& ctx) {
    int* buf = ctx.local().shmalloc_n<int>(1);
    int v = 0;
    EXPECT_THROW(ctx.put(buf, &v, 4, 4), std::out_of_range);
    EXPECT_THROW(ctx.get(&v, buf, 4, -1), std::out_of_range);
    EXPECT_THROW(ctx.broadcast(buf, buf, 4, 9), std::out_of_range);
    ctx.barrier_all();
    ctx.local().shfree(buf);
  });
}

TEST(Cluster, ExceptionPropagatesWithoutDeadlock) {
  Cluster cluster(tilesim::tile_gx36(), small_opts());
  EXPECT_THROW(cluster.run(2,
                           [](ClusterContext& ctx) {
                             ctx.barrier_all();
                             if (ctx.global_pe() == 3) {
                               throw std::runtime_error("cluster boom");
                             }
                             // Others proceed to the end normally.
                           }),
               std::runtime_error);
}

TEST(Cluster, ThreeDeviceFullMesh) {
  Cluster cluster(tilesim::tile_gx36(), small_opts(), /*num_devices=*/3);
  cluster.run(2, [](ClusterContext& ctx) {
    EXPECT_EQ(ctx.global_npes(), 6);
    const int g = ctx.global_pe();
    const int n = ctx.global_npes();
    long* slot = ctx.local().shmalloc_n<long>(1);
    *slot = -1;
    ctx.barrier_all();
    const long token = g;
    ctx.put(slot, &token, sizeof(long), (g + 2) % n);  // hops across devices
    ctx.barrier_all();
    EXPECT_EQ(*slot, (g + n - 2) % n);
    ctx.barrier_all();
    ctx.local().shfree(slot);
  });
}

TEST(Cluster, ThreeDeviceBroadcastFromMiddleDevice) {
  Cluster cluster(tilesim::tile_gx36(), small_opts(), /*num_devices=*/3);
  cluster.run(2, [](ClusterContext& ctx) {
    int* data = ctx.local().shmalloc_n<int>(64);
    const int root = 3;  // device 1, local PE 1
    for (int i = 0; i < 64; ++i) {
      data[i] = ctx.global_pe() == root ? 80 + i : -1;
    }
    ctx.barrier_all();
    ctx.broadcast(data, data, 64 * sizeof(int), root);
    ctx.barrier_all();
    for (int i = 0; i < 64; ++i) ASSERT_EQ(data[i], 80 + i);
    ctx.local().shfree(data);
  });
}

TEST(Cluster, RejectsSingleDeviceCluster) {
  EXPECT_THROW(Cluster(tilesim::tile_gx36(), small_opts(), 1),
               std::invalid_argument);
}

TEST(Cluster, DeterministicVirtualTime) {
  Cluster cluster(tilesim::tile_gx36(), small_opts());
  tilesim::ps_t first = 0;
  for (int trial = 0; trial < 2; ++trial) {
    tilesim::ps_t elapsed = 0;
    cluster.run(2, [&](ClusterContext& ctx) {
      int* buf = ctx.local().shmalloc_n<int>(1024);
      ctx.barrier_all();
      ctx.local().harness_sync_reset();
      ctx.put(buf, buf, 1024 * sizeof(int),
              (ctx.global_pe() + 2) % 4);  // all cross-device
      ctx.barrier_all();
      if (ctx.global_pe() == 0) elapsed = ctx.local().clock().now();
      ctx.local().harness_sync();
      ctx.local().shfree(buf);
    });
    if (trial == 0) {
      first = elapsed;
      EXPECT_GT(first, 0u);
    } else {
      EXPECT_EQ(elapsed, first);
    }
  }
}

}  // namespace
