// Tests for the 2D-FFT case study (paper §V-A): numerical correctness of
// the 1D kernel, equivalence of the parallel transform with the serial
// reference at any PE count, and the serialization property behind Fig 13.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "apps/fft.hpp"
#include "tshmem/runtime.hpp"

namespace {

using apps::cfloat;
using tshmem::Context;
using tshmem::Runtime;

TEST(Fft1d, DeltaTransformsToConstant) {
  std::vector<cfloat> data(16, cfloat(0, 0));
  data[0] = cfloat(1, 0);
  apps::fft1d(data);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5);
  }
}

TEST(Fft1d, SingleToneLandsInOneBin) {
  constexpr std::size_t n = 64;
  constexpr int k = 5;
  std::vector<cfloat> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float ang = 2.0f * std::numbers::pi_v<float> * k *
                      static_cast<float>(i) / n;
    data[i] = cfloat(std::cos(ang), std::sin(ang));
  }
  apps::fft1d(data);
  for (std::size_t bin = 0; bin < n; ++bin) {
    const float mag = std::abs(data[bin]);
    if (bin == k) {
      EXPECT_NEAR(mag, static_cast<float>(n), 1e-2);
    } else {
      EXPECT_LT(mag, 1e-2) << "bin " << bin;
    }
  }
}

TEST(Fft1d, ForwardInverseRoundTrip) {
  std::vector<cfloat> data(128), orig(128);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = apps::fft2d_input(0, i, 42);
    orig[i] = data[i];
  }
  apps::fft1d(data, false);
  apps::fft1d(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-4);
    EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-4);
  }
}

TEST(Fft1d, ParsevalEnergyConservation) {
  constexpr std::size_t n = 256;
  std::vector<cfloat> data(n);
  double time_energy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = apps::fft2d_input(3, i, 7);
    time_energy += std::norm(data[i]);
  }
  apps::fft1d(data);
  double freq_energy = 0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / n, time_energy, time_energy * 1e-4);
}

TEST(Fft1d, RejectsNonPowerOfTwo) {
  std::vector<cfloat> data(12);
  EXPECT_THROW(apps::fft1d(data), std::invalid_argument);
}

TEST(Fft1d, FlopModel) {
  EXPECT_EQ(apps::fft1d_flops(1024), 10u * 512 * 10);
  EXPECT_EQ(apps::fft1d_flops(2), 10u);
  EXPECT_EQ(apps::fft1d_flops(1), 0u);
  EXPECT_EQ(apps::fft1d_flops(16, true), apps::fft1d_flops(16) + 32);
}

TEST(Fft2dReference, MatchesNaiveDft) {
  // Cross-check the 2D reference against a direct O(n^4) DFT at n = 8.
  constexpr std::size_t n = 8;
  std::vector<cfloat> m(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m[r * n + c] = apps::fft2d_input(r, c, 11);
    }
  }
  std::vector<cfloat> naive(n * n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      std::complex<double> acc(0, 0);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          const double ang = -2.0 * std::numbers::pi *
                             (static_cast<double>(u * r) / n +
                              static_cast<double>(v * c) / n);
          acc += std::complex<double>(m[r * n + c]) *
                 std::polar(1.0, ang);
        }
      }
      naive[u * n + v] = cfloat(acc);
    }
  }
  apps::fft2d_reference(m, n);
  for (std::size_t i = 0; i < n * n; ++i) {
    EXPECT_NEAR(m[i].real(), naive[i].real(), 1e-3) << i;
    EXPECT_NEAR(m[i].imag(), naive[i].imag(), 1e-3) << i;
  }
}

class Fft2dParallelTest : public ::testing::TestWithParam<int> {};

TEST_P(Fft2dParallelTest, MatchesSerialReferenceAtAnyPeCount) {
  const int npes = GetParam();
  constexpr std::size_t n = 64;
  constexpr std::uint64_t seed = 99;
  std::vector<cfloat> reference(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      reference[r * n + c] = apps::fft2d_input(r, c, seed);
    }
  }
  apps::fft2d_reference(reference, n);

  Runtime rt(tilesim::tile_gx36());
  std::vector<cfloat> parallel;
  rt.run(npes, [&](Context& ctx) {
    auto result = apps::fft2d_run(ctx, n, seed);
    if (ctx.my_pe() == 0) parallel = std::move(result.output);
  });
  ASSERT_EQ(parallel.size(), n * n);
  double max_err = 0;
  for (std::size_t i = 0; i < n * n; ++i) {
    max_err = std::max<double>(max_err, std::abs(parallel[i] - reference[i]));
  }
  EXPECT_LT(max_err, 1e-2) << "npes=" << npes;
}

INSTANTIATE_TEST_SUITE_P(PeSweep, Fft2dParallelTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 32));

TEST(Fft2dParallel, TimingPhasesArePopulated) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(4, [](Context& ctx) {
    const auto result = apps::fft2d_run(ctx, 64, 5);
    if (ctx.my_pe() == 0) {
      const auto& t = result.timing;
      EXPECT_GT(t.row_fft_ps, 0u);
      EXPECT_GT(t.transpose_ps, 0u);
      EXPECT_GT(t.col_fft_ps, 0u);
      EXPECT_GT(t.final_transpose_ps, 0u);
      EXPECT_EQ(t.total_ps, t.row_fft_ps + t.transpose_ps + t.col_fft_ps +
                                t.final_transpose_ps);
    }
  });
}

TEST(Fft2dParallel, FinalTransposeSerializesOnRoot) {
  // The Fig 13 bottleneck: the final-transpose phase does not shrink as
  // tiles are added, while the FFT phases do.
  Runtime rt(tilesim::tile_gx36());
  apps::Fft2dTiming t4{}, t16{};
  rt.run(4, [&](Context& ctx) {
    const auto r = apps::fft2d_run(ctx, 256, 5);
    if (ctx.my_pe() == 0) t4 = r.timing;
  });
  rt.run(16, [&](Context& ctx) {
    const auto r = apps::fft2d_run(ctx, 256, 5);
    if (ctx.my_pe() == 0) t16 = r.timing;
  });
  EXPECT_LT(t16.row_fft_ps * 3, t4.row_fft_ps);      // ~4x fewer rows each
  EXPECT_NEAR(static_cast<double>(t16.final_transpose_ps),
              static_cast<double>(t4.final_transpose_ps),
              0.15 * static_cast<double>(t4.final_transpose_ps));
}

TEST(Fft2dParallel, ValidatesArguments) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    EXPECT_THROW((void)apps::fft2d_run(ctx, 100, 1), std::invalid_argument);
    EXPECT_THROW((void)apps::fft2d_run(ctx, 1, 1), std::invalid_argument);
    ctx.barrier_all();
  });
}

TEST(Fft2dParallel, ProSlowerThanGxByRoughlyTenfold) {
  // Fig 13: "TILE-Gx36 execution times are much faster (roughly an order of
  // magnitude) than those on TILEPro64".
  apps::Fft2dTiming gx{}, pro{};
  {
    Runtime rt(tilesim::tile_gx36());
    rt.run(1, [&](Context& ctx) {
      const auto r = apps::fft2d_run(ctx, 128, 3);
      if (ctx.my_pe() == 0) gx = r.timing;
    });
  }
  {
    Runtime rt(tilesim::tile_pro64());
    rt.run(1, [&](Context& ctx) {
      const auto r = apps::fft2d_run(ctx, 128, 3);
      if (ctx.my_pe() == 0) pro = r.timing;
    });
  }
  const double ratio = static_cast<double>(pro.total_ps) /
                       static_cast<double>(gx.total_ps);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 15.0);
}

}  // namespace
