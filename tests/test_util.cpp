// Unit tests for src/util: RNG determinism, statistics, tables, CLI, units.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace tshmem_util;

// --- RNG ---------------------------------------------------------------------

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicAcrossInstances) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, ReseedRestartsStream) {
  Xoshiro256 a(123);
  const auto first = a.next();
  a.next();
  a.reseed(123);
  EXPECT_EQ(a.next(), first);
}

TEST(Xoshiro256, BelowRespectsBound) {
  Xoshiro256 rng(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowZeroBoundReturnsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(3);
  int counts[10] = {};
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.1, 0.01);
  }
}

// --- stats -------------------------------------------------------------------

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(OnlineStats, EmptyIsSafe) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesCombined) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.37;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 3.0);
}

TEST(SampleSet, PercentilesInterpolate) {
  SampleSet s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
}

TEST(SampleSet, BadPercentileThrows) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(LinearSlope, RecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.5 * i + 2.0);
  }
  EXPECT_NEAR(linear_slope(x, y), 3.5, 1e-12);
}

TEST(LinearSlope, RejectsBadInput) {
  EXPECT_THROW(linear_slope({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(linear_slope({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(Correlation, PerfectAndNone) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  std::vector<double> z{5, 5, 5, 5, 5};
  EXPECT_EQ(correlation(x, z), 0.0);  // zero variance
}

// --- table -------------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(-42), "-42");
  EXPECT_EQ(Table::bytes(512), "512 B");
  EXPECT_EQ(Table::bytes(2048), "2 kB");
  EXPECT_EQ(Table::bytes(3 << 20), "3 MB");
}

// --- cli ---------------------------------------------------------------------

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--pes", "16", "--device=gx36", "--csv",
                        "pos1"};
  Cli cli(6, const_cast<char**>(argv), {"csv"});
  EXPECT_EQ(cli.get_int("pes", 1), 16);
  EXPECT_EQ(cli.get_string("device", "?"), "gx36");
  EXPECT_TRUE(cli.get_flag("csv"));
  EXPECT_FALSE(cli.get_flag("missing"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsApply) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("pes", 7), 7);
  EXPECT_EQ(cli.get_double("frac", 0.5), 0.5);
  EXPECT_EQ(cli.get_string("device", "pro64"), "pro64");
}

TEST(Cli, BadNumberThrows) {
  const char* argv[] = {"prog", "--pes", "abc"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_int("pes", 1), std::invalid_argument);
}

// --- units -------------------------------------------------------------------

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(ps_to_ns(21'000), 21.0);
  EXPECT_DOUBLE_EQ(ps_to_us(1'500'000), 1.5);
  EXPECT_EQ(ns_to_ps(21.0), 21'000u);
  EXPECT_EQ(us_to_ps(1.5), 1'500'000u);
}

TEST(Units, BandwidthMath) {
  // 1 MB in 1 ms -> 1000 MB/s.
  EXPECT_NEAR(bandwidth_mbps(1'000'000, kPsPerMs), 1000.0, 1e-9);
  EXPECT_NEAR(bandwidth_gbps(1'000'000, kPsPerMs), 1.0, 1e-9);
  EXPECT_EQ(bandwidth_mbps(100, 0), 0.0);
}

TEST(Units, TransferTimeRoundTrips) {
  const auto t = transfer_time_ps(1'000'000, 1000.0);
  EXPECT_EQ(t, kPsPerMs);
  EXPECT_EQ(transfer_time_ps(100, 0.0), 0u);
}

}  // namespace
