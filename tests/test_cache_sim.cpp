// Tests for the mechanistic cache simulator: set-associative behaviour,
// LRU, DDC capacity aggregation and homing-policy effects, plus the
// capacity-transition property that ties it to the analytic MemModel.
#include <gtest/gtest.h>

#include "sim/cache_sim.hpp"

namespace {

using tilesim::AccessCounts;
using tilesim::CacheSim;
using tilesim::HitLevel;
using tilesim::Homing;
using tilesim::SetAssocCache;

TEST(SetAssocCache, GeometryDerivation) {
  SetAssocCache c(32 * 1024, 64, 2);
  EXPECT_EQ(c.sets(), 256u);
  EXPECT_EQ(c.ways(), 2u);
  EXPECT_EQ(c.line_bytes(), 64u);
}

TEST(SetAssocCache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache(100, 64, 2), std::invalid_argument);   // not sets*ways*line
  EXPECT_THROW(SetAssocCache(32 * 1024, 48, 2), std::invalid_argument);  // line not pow2
  EXPECT_THROW(SetAssocCache(32 * 1024, 64, 0), std::invalid_argument);
}

TEST(SetAssocCache, MissThenHit) {
  SetAssocCache c(4096, 64, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(SetAssocCache, LruEvictionWithinSet) {
  // 2-way, 2 sets: lines mapping to set 0 are multiples of 2*64 = 128.
  SetAssocCache c(256, 64, 2);
  ASSERT_EQ(c.sets(), 2u);
  c.access(0);    // set 0, way A
  c.access(128);  // set 0, way B
  c.access(0);    // touch A -> B becomes LRU
  c.access(256);  // set 0, evicts B (128)
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(128));
  EXPECT_TRUE(c.probe(256));
}

TEST(SetAssocCache, InvalidateAll) {
  SetAssocCache c(4096, 64, 2);
  c.access(0);
  ASSERT_TRUE(c.probe(0));
  c.invalidate_all();
  EXPECT_FALSE(c.probe(0));
}

TEST(SetAssocCache, WorkingSetWithinCapacityAlwaysHitsAfterWarmup) {
  SetAssocCache c(8 * 1024, 64, 8);
  for (std::uint64_t a = 0; a < 8 * 1024; a += 64) c.access(a);
  c.reset_stats();
  for (std::uint64_t a = 0; a < 8 * 1024; a += 64) c.access(a);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(CacheSim, Gx36HierarchyCapacities) {
  CacheSim sim(tilesim::tile_gx36());
  EXPECT_EQ(sim.l1().capacity_bytes(), 32u * 1024);
  EXPECT_EQ(sim.l2().capacity_bytes(), 256u * 1024);
  // DDC = other 35 tiles' L2 = 8.75 MB, rounded down to a legal geometry.
  EXPECT_GT(sim.ddc().capacity_bytes(), 4u << 20);
  EXPECT_LE(sim.ddc().capacity_bytes(), 35u * 256 * 1024);
}

// The central property: steady-state residency transitions at the L1d, L2
// and DDC capacities — the same breakpoints the Fig 3 curve encodes.
struct SweepCase {
  std::size_t working_set;
  HitLevel expected_majority;
};

class CapacityTransitionTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CapacityTransitionTest, SteadyStateResidency) {
  const auto& p = GetParam();
  CacheSim sim(tilesim::tile_gx36());
  const AccessCounts counts =
      sim.sweep(0, p.working_set, /*passes=*/4, Homing::kHashForHome);
  const std::uint64_t total = counts.total();
  ASSERT_GT(total, 0u);
  std::uint64_t majority = 0;
  switch (p.expected_majority) {
    case HitLevel::kL1: majority = counts.l1; break;
    case HitLevel::kL2: majority = counts.l2; break;
    case HitLevel::kDdc: majority = counts.ddc; break;
    case HitLevel::kDram: majority = counts.dram; break;
  }
  EXPECT_GT(majority * 2, total)
      << "working set " << p.working_set << ": l1=" << counts.l1
      << " l2=" << counts.l2 << " ddc=" << counts.ddc
      << " dram=" << counts.dram;
}

INSTANTIATE_TEST_SUITE_P(
    Gx36, CapacityTransitionTest,
    ::testing::Values(
        SweepCase{16 * 1024, HitLevel::kL1},    // within 32 kB L1d
        SweepCase{128 * 1024, HitLevel::kL2},   // within 256 kB L2
        SweepCase{2 << 20, HitLevel::kDdc},     // within ~8.4 MB DDC
        SweepCase{64 << 20, HitLevel::kDram})); // beyond everything

TEST(CacheSim, LocalHomingNeverUsesDdc) {
  // Paper §III-A: locally-homed pages cannot be distributed into other
  // tiles' L2 caches, so a 2 MB working set (DDC-resident under
  // hash-for-home) degrades to DRAM.
  CacheSim sim(tilesim::tile_gx36());
  const auto local = sim.sweep(0, 2 << 20, 4, Homing::kLocal);
  EXPECT_EQ(local.ddc, 0u);
  EXPECT_GT(local.dram, local.l2);
  sim.reset();
  const auto hashed = sim.sweep(0, 2 << 20, 4, Homing::kHashForHome);
  EXPECT_GT(hashed.ddc, hashed.dram);
}

TEST(CacheSim, StreamBandwidthDecreasesWithWorkingSet) {
  CacheSim sim(tilesim::tile_gx36());
  // Warm each size, then measure a steady-state pass.
  auto steady_mbps = [&](std::size_t bytes) {
    sim.reset();
    (void)sim.stream_copy_mbps(0, 1 << 28, bytes, Homing::kHashForHome);
    return sim.stream_copy_mbps(0, 1 << 28, bytes, Homing::kHashForHome);
  };
  const double small = steady_mbps(8 * 1024);
  const double mid = steady_mbps(128 * 1024);
  const double big = steady_mbps(16 << 20);
  EXPECT_GT(small, mid);
  EXPECT_GT(mid, big);
}

TEST(CacheSim, LevelCyclesOrdering) {
  CacheSim sim(tilesim::tile_gx36());
  EXPECT_LT(sim.level_cycles(HitLevel::kL1), sim.level_cycles(HitLevel::kL2));
  EXPECT_LT(sim.level_cycles(HitLevel::kL2), sim.level_cycles(HitLevel::kDdc));
  EXPECT_LT(sim.level_cycles(HitLevel::kDdc),
            sim.level_cycles(HitLevel::kDram));
}

TEST(CacheSim, SweepValidatesPasses) {
  CacheSim sim(tilesim::tile_pro64());
  EXPECT_THROW((void)sim.sweep(0, 1024, 0, Homing::kHashForHome),
               std::invalid_argument);
}

TEST(CacheSim, Pro64SmallerCachesTransitionEarlier) {
  // TILEPro64's 8 kB L1d / 64 kB L2: a 16 kB working set that is L1-resident
  // on the Gx becomes L2-resident on the Pro.
  CacheSim pro(tilesim::tile_pro64());
  const auto counts = pro.sweep(0, 16 * 1024, 4, Homing::kHashForHome);
  EXPECT_GT(counts.l2, counts.l1);
}

}  // namespace
