// Tests for the TILEPro static network: route validation, switch-port
// conflicts, timing (cheap setup vs the UDN), and delivery.
#include <gtest/gtest.h>

#include "sim/device.hpp"
#include "tmc/stn.hpp"
#include "tmc/udn.hpp"

namespace {

using tilesim::Device;
using tilesim::Tile;
using tmc::StaticNetwork;

class StnTest : public ::testing::Test {
 protected:
  Device device_{tilesim::tile_pro64()};  // 8x8 mesh
  StaticNetwork stn_{device_};
};

TEST(Stn, OnlyOnDevicesWithStaticNetwork) {
  Device gx(tilesim::tile_gx36());
  EXPECT_THROW(StaticNetwork{gx}, std::invalid_argument);
}

TEST_F(StnTest, ConfigureValidRoute) {
  // 0 -> 1 -> 2 -> 10 (right, right, down on the 8-wide mesh).
  const int r = stn_.configure_route({0, 1, 2, 10});
  EXPECT_EQ(r, 0);
  EXPECT_EQ(stn_.route_count(), 1);
  EXPECT_EQ(stn_.route_path(r).size(), 4u);
}

TEST_F(StnTest, RejectsNonAdjacentAndBadPaths) {
  EXPECT_THROW((void)stn_.configure_route({0, 2}), std::invalid_argument);
  EXPECT_THROW((void)stn_.configure_route({0}), std::invalid_argument);
  EXPECT_THROW((void)stn_.configure_route({0, 99}), std::invalid_argument);
  // 7 -> 8 are consecutive ids but on different rows of the 8-wide mesh.
  EXPECT_THROW((void)stn_.configure_route({7, 8}), std::invalid_argument);
}

TEST_F(StnTest, SwitchPortConflictsDetected) {
  (void)stn_.configure_route({0, 1, 2});
  // Reusing tile 0's east port conflicts...
  EXPECT_THROW((void)stn_.configure_route({0, 1}), std::invalid_argument);
  // ...but a route through different ports of the same tiles is fine.
  const int r = stn_.configure_route({8, 0});   // north through tile 0
  EXPECT_EQ(stn_.route_path(r).back(), 0);
  // And the reverse direction of an existing link is a different port.
  (void)stn_.configure_route({2, 1});
}

TEST_F(StnTest, DeliversPayloadInOrder) {
  const int route = stn_.configure_route({0, 1, 2, 3});
  device_.run(4, [&](Tile& tile) {
    if (tile.id() == 0) {
      for (std::uint64_t i = 0; i < 8; ++i) {
        const std::uint64_t w[2] = {i, i * i};
        stn_.send(tile, route, w);
      }
    } else if (tile.id() == 3) {
      for (std::uint64_t i = 0; i < 8; ++i) {
        const auto msg = stn_.recv(tile, route);
        EXPECT_EQ(msg.payload[0], i);
        EXPECT_EQ(msg.payload[1], i * i);
        EXPECT_EQ(msg.src_tile, 0);
      }
    }
  });
}

TEST_F(StnTest, EndpointEnforcement) {
  const int route = stn_.configure_route({4, 5, 6});
  device_.run(8, [&](Tile& tile) {
    if (tile.id() == 5) {
      const std::uint64_t w = 1;
      EXPECT_THROW(stn_.send(tile, route, {&w, 1}), std::invalid_argument);
      EXPECT_THROW((void)stn_.try_recv(tile, route), std::invalid_argument);
    }
    if (tile.id() == 4) {
      const std::uint64_t w = 1;
      EXPECT_THROW(stn_.send(tile, 99, {&w, 1}), std::out_of_range);
      stn_.send(tile, route, {&w, 1});
    }
    if (tile.id() == 6) {
      EXPECT_EQ(stn_.recv(tile, route).payload[0], 1u);
    }
  });
}

TEST_F(StnTest, LatencyModelSetupPlusHops) {
  const int route = stn_.configure_route({16, 17, 18, 19, 27});
  const auto& cfg = device_.config();
  // 4 hops, 1 word.
  EXPECT_EQ(stn_.route_latency_ps(route, 1),
            cfg.stn_setup_ps + 4 * cfg.cycle_ps());
  // Extra words pipeline at one per cycle.
  EXPECT_EQ(stn_.route_latency_ps(route, 5),
            cfg.stn_setup_ps + 4 * cfg.cycle_ps() + 4 * cfg.cycle_ps());
}

TEST_F(StnTest, BeatsUdnLatencyForShortHops) {
  // The STN's whole point: no per-packet route computation. For a 1-hop
  // 1-word message the STN costs ~3 cycles + 1 hop vs the UDN's ~18 ns
  // setup + 1 hop.
  tmc::UdnFabric udn(device_);
  const int route = stn_.configure_route({32, 33});
  const auto stn_lat = stn_.route_latency_ps(route, 1);
  const auto udn_lat = udn.wire_latency_ps(32, 33, 1);
  EXPECT_LT(stn_lat * 3, udn_lat);
}

TEST_F(StnTest, RecvAdvancesClock) {
  const int route = stn_.configure_route({40, 41});
  device_.run(42, [&](Tile& tile) {
    if (tile.id() == 40) {
      tile.clock().advance(2'000'000);
      const std::uint64_t w = 9;
      stn_.send(tile, route, {&w, 1});
    } else if (tile.id() == 41) {
      const auto msg = stn_.recv(tile, route);
      EXPECT_EQ(tile.clock().now(), msg.arrival_ps);
      EXPECT_GT(msg.arrival_ps, 2'000'000u);
    }
  });
}

TEST_F(StnTest, EmptyPayloadRejected) {
  const int route = stn_.configure_route({48, 49});
  device_.run(49, [&](Tile& tile) {
    if (tile.id() == 48) {
      EXPECT_THROW(stn_.send(tile, route, {}), std::invalid_argument);
    }
  });
}

}  // namespace
