// Tests for the §VI comparison baselines: the two-sided MsgPassing layer
// (send/recv matching, staging semantics, collectives) and the ForkJoin
// layer (static scheduling, fork/join cost model), plus the symmetry
// validator added to the TSHMEM runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "compare/fork_join.hpp"
#include "compare/msg_passing.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using compare::ForkJoin;
using compare::MsgPassing;
using tilesim::Device;
using tilesim::Tile;

class MsgPassingTest : public ::testing::Test {
 protected:
  Device device_{tilesim::tile_gx36()};
  tmc::CommonMemory cmem_{16 << 20};
};

TEST_F(MsgPassingTest, SendRecvRoundTrip) {
  MsgPassing mp(device_, cmem_, 2, 4096);
  device_.run(2, [&](Tile& tile) {
    std::vector<std::byte> buf(100);
    if (tile.id() == 0) {
      for (int i = 0; i < 100; ++i) buf[i] = static_cast<std::byte>(i);
      mp.send(tile, 1, 7, buf);
    } else {
      std::vector<std::byte> out(256);
      const std::size_t n = mp.recv(tile, 0, 7, out);
      EXPECT_EQ(n, 100u);
      EXPECT_EQ(out[42], std::byte{42});
    }
  });
}

TEST_F(MsgPassingTest, RendezvousBlocksSenderUntilRecv) {
  // The ack releasing the sender is enqueued inside recv() before recv()
  // returns, so a flag set by the receiver *after* recv() races the
  // sender's return. Assert the blocking property via host time instead:
  // the receiver delays its recv by 10 ms, so a rendezvous send must not
  // return (materially) sooner.
  MsgPassing mp(device_, cmem_, 2, 4096);
  constexpr auto kRecvDelay = std::chrono::milliseconds(10);
  device_.run(2, [&](Tile& tile) {
    std::vector<std::byte> buf(8);
    if (tile.id() == 0) {
      const auto t0 = std::chrono::steady_clock::now();
      mp.send(tile, 1, 1, buf);
      const auto blocked = std::chrono::steady_clock::now() - t0;
      EXPECT_GE(blocked, kRecvDelay - std::chrono::milliseconds(2));
    } else {
      // Deliberate delay so the sender demonstrably blocks; not a wait
      // loop, so the Watchdog wrapper does not apply.
      std::this_thread::sleep_for(kRecvDelay);  // tshmem-lint: allow(R002)
      std::vector<std::byte> out(8);
      (void)mp.recv(tile, 0, 1, out);
    }
  });
}

TEST_F(MsgPassingTest, ValidationErrors) {
  MsgPassing mp(device_, cmem_, 2, 64);
  EXPECT_THROW(MsgPassing(device_, cmem_, 0, 64), std::invalid_argument);
  device_.run(2, [&](Tile& tile) {
    std::vector<std::byte> big(100);
    if (tile.id() == 0) {
      EXPECT_THROW(mp.send(tile, 1, 0, big), std::length_error);
      EXPECT_THROW(mp.send(tile, 9, 0, {}), std::invalid_argument);
      std::vector<std::byte> ok(32);
      mp.send(tile, 1, 0, ok);
    } else {
      std::vector<std::byte> tiny(8);
      EXPECT_THROW((void)mp.recv(tile, 0, 0, tiny), std::length_error);
    }
  });
}

TEST_F(MsgPassingTest, BcastDeliversFromAnyRoot) {
  MsgPassing mp(device_, cmem_, 6, 1024);
  for (const int root : {0, 3}) {
    device_.run(6, [&](Tile& tile) {
      std::vector<std::byte> data(64);
      if (tile.id() == root) {
        for (int i = 0; i < 64; ++i) data[i] = static_cast<std::byte>(i + 1);
      }
      mp.bcast(tile, root, data);
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(data[i], static_cast<std::byte>(i + 1))
            << "tile " << tile.id() << " root " << root;
      }
      mp.barrier(tile);
    });
  }
}

TEST_F(MsgPassingTest, ReduceSumMatchesClosedForm) {
  MsgPassing mp(device_, cmem_, 7, 1024);
  device_.run(7, [&](Tile& tile) {
    std::vector<long> vals(5);
    for (int i = 0; i < 5; ++i) vals[static_cast<std::size_t>(i)] = tile.id() + i;
    mp.reduce_sum(tile, 0, vals);
    if (tile.id() == 0) {
      for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(vals[static_cast<std::size_t>(i)], 21 + 7 * i);  // sum(0..6)
      }
    }
    mp.barrier(tile);
  });
}

TEST_F(MsgPassingTest, BarrierIsRendezvous) {
  MsgPassing mp(device_, cmem_, 8, 64);
  std::atomic<int> count{0};
  device_.run(8, [&](Tile& tile) {
    for (int round = 1; round <= 4; ++round) {
      count.fetch_add(1);
      mp.barrier(tile);
      EXPECT_GE(count.load(), round * 8);
    }
  });
}

TEST_F(MsgPassingTest, TwoSidedCostsMoreThanOneSidedPut) {
  // The §VI comparison in miniature: the same 256 kB payload moved by a
  // TSHMEM put vs a send/recv pair — the two-sided path pays two copies
  // plus a rendezvous.
  constexpr std::size_t kBytes = 256 * 1024;
  tilesim::ps_t two_sided = 0;
  {
    MsgPassing mp(device_, cmem_, 2, kBytes);
    device_.run(2, [&](Tile& tile) {
      std::vector<std::byte> buf(kBytes);
      device_.sync_and_reset_clocks();
      if (tile.id() == 0) {
        mp.send(tile, 1, 0, buf);
        two_sided = tile.clock().now();
      } else {
        (void)mp.recv(tile, 0, 0, buf);
      }
      device_.host_sync();
    });
  }
  tilesim::ps_t one_sided = 0;
  tshmem::Runtime rt(tilesim::tile_gx36());
  rt.run(2, [&](tshmem::Context& ctx) {
    auto* sym = static_cast<std::byte*>(ctx.shmalloc(kBytes));
    std::vector<std::byte> local(kBytes);
    ctx.barrier_all();
    ctx.harness_sync_reset();
    if (ctx.my_pe() == 0) {
      ctx.put(sym, local.data(), kBytes, 1);
      one_sided = ctx.clock().now();
    }
    ctx.harness_sync();
    ctx.shfree(sym);
  });
  EXPECT_GT(two_sided, one_sided * 3 / 2);  // >= 1.5x
}

// --- fork-join ------------------------------------------------------------------

TEST(ForkJoinTest, StaticSchedulingCoversRangeExactlyOnce) {
  Device device(tilesim::tile_gx36());
  ForkJoin fj(device, 6);
  std::vector<std::atomic<int>> hits(100);
  device.run(6, [&](Tile& tile) {
    fj.parallel_for(tile, 100, [&](std::size_t b, std::size_t e, Tile&) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(ForkJoinTest, HandlesFewerItemsThanThreads) {
  Device device(tilesim::tile_gx36());
  ForkJoin fj(device, 8);
  std::atomic<int> total{0};
  device.run(8, [&](Tile& tile) {
    fj.parallel_for(tile, 3, [&](std::size_t b, std::size_t e, Tile&) {
      total.fetch_add(static_cast<int>(e - b));
    });
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ForkJoinTest, ForkAndJoinCostsCharged) {
  Device device(tilesim::tile_gx36());
  ForkJoin fj(device, 4);
  device.run(4, [&](Tile& tile) {
    device.sync_and_reset_clocks();
    fj.parallel_for(tile, 4, [](std::size_t, std::size_t, Tile&) {});
    // Everyone leaves at/after the sync-barrier release, which itself sits
    // after the last worker's staggered wake-up.
    const auto min_expected =
        3 * compare::ForkJoinConfig{}.wake_per_worker_ps;
    EXPECT_GT(tile.clock().now(), min_expected);
    device.host_sync();
  });
}

TEST(ForkJoinTest, RejectsBadThreadCount) {
  Device device(tilesim::tile_gx36());
  EXPECT_THROW(ForkJoin(device, 0), std::invalid_argument);
  EXPECT_THROW(ForkJoin(device, 37), std::invalid_argument);
}

// --- symmetry validator ------------------------------------------------------------

TEST(SymmetryValidation, AcceptsMatchingRejectsDivergent) {
  tshmem::RuntimeOptions opts;
  opts.validate_symmetry = true;
  {
    tshmem::Runtime rt(tilesim::tile_gx36(), opts);
    rt.run(4, [](tshmem::Context& ctx) {
      int* p = ctx.shmalloc_n<int>(64);  // identical on all PEs: fine
      ctx.shfree(p);
    });
  }
  {
    tshmem::Runtime rt(tilesim::tile_gx36(), opts);
    EXPECT_THROW(rt.run(4,
                        [](tshmem::Context& ctx) {
                          // PE-dependent size: the SIV-A violation.
                          (void)ctx.shmalloc(64 +
                                             static_cast<std::size_t>(
                                                 ctx.my_pe()));
                        }),
                 std::logic_error);
  }
}

}  // namespace
