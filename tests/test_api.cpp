// Tests for the OpenSHMEM v1.0 C-style API surface (tshmem/api.hpp): the
// portability layer SHMEM applications program against (paper Table I).
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "tshmem/api.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::Context;
using tshmem::Runtime;
namespace api = tshmem::api;

long* alloc_psync(Context& ctx, std::size_t n) {
  auto* p = ctx.shmalloc_n<long>(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = api::SHMEM_SYNC_VALUE;
  ctx.barrier_all();
  return p;
}

TEST(Api, OutsideJobThrows) {
  EXPECT_THROW((void)api::_my_pe(), std::logic_error);
  EXPECT_THROW((void)api::shmalloc(8), std::logic_error);
}

TEST(Api, EnvironmentQueries) {
  tshmem::run_spmd(tilesim::tile_gx36(), 5, [](Context&) {
    api::start_pes(0);
    EXPECT_EQ(api::_num_pes(), 5);
    EXPECT_EQ(api::shmem_n_pes(), 5);
    EXPECT_EQ(api::_my_pe(), api::shmem_my_pe());
    EXPECT_EQ(api::shmem_pe_accessible(4), 1);
    EXPECT_EQ(api::shmem_pe_accessible(5), 0);
  });
}

TEST(Api, TypedPutGetFamilies) {
  tshmem::run_spmd(tilesim::tile_gx36(), 2, [](Context&) {
    api::start_pes(0);
    const int me = api::_my_pe();
    const int other = 1 - me;
    auto* s = static_cast<short*>(api::shmalloc(8 * sizeof(short)));
    auto* f = static_cast<float*>(api::shmalloc(8 * sizeof(float)));
    auto* ld =
        static_cast<long double*>(api::shmalloc(4 * sizeof(long double)));
    short ssrc[8];
    float fsrc[8];
    long double ldsrc[4];
    for (int i = 0; i < 8; ++i) {
      ssrc[i] = static_cast<short>(me * 10 + i);
      fsrc[i] = me + i * 0.5f;
    }
    for (int i = 0; i < 4; ++i) ldsrc[i] = me + i * 0.25L;
    api::shmem_barrier_all();
    api::shmem_short_put(s, ssrc, 8, other);
    api::shmem_float_put(f, fsrc, 8, other);
    api::shmem_longdouble_put(ld, ldsrc, 4, other);
    api::shmem_barrier_all();
    EXPECT_EQ(s[3], other * 10 + 3);
    EXPECT_EQ(f[5], other + 2.5f);
    EXPECT_EQ(ld[2], other + 0.5L);
    // Typed gets.
    short sback[8];
    api::shmem_short_get(sback, s, 8, me);
    EXPECT_EQ(sback[3], s[3]);
    api::shmem_barrier_all();
    api::shfree(ld);
    api::shfree(f);
    api::shfree(s);
  });
}

TEST(Api, SizedPutGetAndMem) {
  tshmem::run_spmd(tilesim::tile_gx36(), 2, [](Context&) {
    api::start_pes(0);
    const int other = 1 - api::_my_pe();
    auto* buf = static_cast<std::uint32_t*>(api::shmalloc(64));
    std::uint32_t src32[4] = {1, 2, 3, 4};
    std::uint64_t src64[2] = {10, 20};
    api::shmem_barrier_all();
    api::shmem_put32(buf, src32, 4, other);
    api::shmem_barrier_all();
    EXPECT_EQ(buf[2], 3u);
    api::shmem_barrier_all();
    api::shmem_put64(buf, src64, 2, other);
    api::shmem_barrier_all();
    EXPECT_EQ(reinterpret_cast<std::uint64_t*>(buf)[1], 20u);
    api::shmem_barrier_all();
    char bytes[5] = {'a', 'b', 'c', 'd', 'e'};
    api::shmem_putmem(buf, bytes, 5, other);
    api::shmem_barrier_all();
    EXPECT_EQ(reinterpret_cast<char*>(buf)[4], 'e');
    char back[5];
    api::shmem_getmem(back, buf, 5, other);
    EXPECT_EQ(back[0], 'a');
    api::shmem_barrier_all();
    api::shfree(buf);
  });
}

TEST(Api, ElementalPG) {
  tshmem::run_spmd(tilesim::tile_pro64(), 2, [](Context&) {
    api::start_pes(0);
    const int other = 1 - api::_my_pe();
    auto* c = static_cast<char*>(api::shmalloc(1));
    auto* d = static_cast<double*>(api::shmalloc(8));
    api::shmem_barrier_all();
    api::shmem_char_p(c, 'x', other);
    api::shmem_double_p(d, 6.5, other);
    api::shmem_barrier_all();
    EXPECT_EQ(*c, 'x');
    EXPECT_EQ(api::shmem_double_g(d, other), 6.5);
    api::shmem_barrier_all();
    api::shfree(d);
    api::shfree(c);
  });
}

TEST(Api, StridedIputIget) {
  tshmem::run_spmd(tilesim::tile_gx36(), 2, [](Context&) {
    api::start_pes(0);
    auto* buf = static_cast<long*>(api::shmalloc(16 * sizeof(long)));
    for (int i = 0; i < 16; ++i) buf[i] = -1;
    api::shmem_barrier_all();
    if (api::_my_pe() == 0) {
      long src[4] = {100, 101, 102, 103};
      api::shmem_long_iput(buf, src, 4, 1, 4, 1);
    }
    api::shmem_barrier_all();
    if (api::_my_pe() == 1) {
      EXPECT_EQ(buf[0], 100);
      EXPECT_EQ(buf[4], 101);
      EXPECT_EQ(buf[8], 102);
      EXPECT_EQ(buf[12], 103);
      EXPECT_EQ(buf[1], -1);
    }
    api::shmem_barrier_all();
    api::shfree(buf);
  });
}

TEST(Api, BroadcastCollectFcollect) {
  tshmem::run_spmd(tilesim::tile_gx36(), 4, [](Context& ctx) {
    api::start_pes(0);
    const int me = api::_my_pe();
    long* psync = alloc_psync(ctx, api::SHMEM_COLLECT_SYNC_SIZE);
    auto* src = static_cast<std::int32_t*>(api::shmalloc(4 * 4));
    auto* dst = static_cast<std::int32_t*>(api::shmalloc(4 * 4 * 4));
    for (int i = 0; i < 4; ++i) src[i] = me * 10 + i;
    api::shmem_barrier_all();

    api::shmem_broadcast32(dst, src, 4, 0, 0, 0, 4, psync);
    api::shmem_barrier_all();
    if (me != 0) {
      for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[i], i);  // root 0's data
    }
    api::shmem_barrier_all();

    api::shmem_fcollect32(dst, src, 4, 0, 0, 4, psync);
    api::shmem_barrier_all();
    for (int pe = 0; pe < 4; ++pe) {
      for (int i = 0; i < 4; ++i) EXPECT_EQ(dst[pe * 4 + i], pe * 10 + i);
    }
    api::shmem_barrier_all();

    api::shmem_collect32(dst, src, 2, 0, 0, 4, psync);
    api::shmem_barrier_all();
    for (int pe = 0; pe < 4; ++pe) {
      EXPECT_EQ(dst[pe * 2], pe * 10);
      EXPECT_EQ(dst[pe * 2 + 1], pe * 10 + 1);
    }
    api::shmem_barrier_all();
    api::shfree(dst);
    api::shfree(src);
    api::shfree(psync);
  });
}

TEST(Api, ReductionFamilies) {
  tshmem::run_spmd(tilesim::tile_gx36(), 4, [](Context& ctx) {
    api::start_pes(0);
    const int me = api::_my_pe();
    long* psync = alloc_psync(ctx, api::SHMEM_REDUCE_SYNC_SIZE);
    auto* isrc = static_cast<int*>(api::shmalloc(8 * sizeof(int)));
    auto* idst = static_cast<int*>(api::shmalloc(8 * sizeof(int)));
    auto* iwrk = static_cast<int*>(
        api::shmalloc(api::SHMEM_REDUCE_MIN_WRKDATA_SIZE * sizeof(int)));
    for (int i = 0; i < 8; ++i) isrc[i] = me + 1;
    api::shmem_barrier_all();

    api::shmem_int_sum_to_all(idst, isrc, 8, 0, 0, 4, iwrk, psync);
    api::shmem_barrier_all();
    for (int i = 0; i < 8; ++i) EXPECT_EQ(idst[i], 10);  // 1+2+3+4
    api::shmem_barrier_all();

    api::shmem_int_max_to_all(idst, isrc, 8, 0, 0, 4, iwrk, psync);
    api::shmem_barrier_all();
    for (int i = 0; i < 8; ++i) EXPECT_EQ(idst[i], 4);
    api::shmem_barrier_all();

    api::shmem_int_prod_to_all(idst, isrc, 8, 0, 0, 4, iwrk, psync);
    api::shmem_barrier_all();
    for (int i = 0; i < 8; ++i) EXPECT_EQ(idst[i], 24);
    api::shmem_barrier_all();

    // Double reduction.
    auto* dsrc = static_cast<double*>(api::shmalloc(4 * sizeof(double)));
    auto* ddst = static_cast<double*>(api::shmalloc(4 * sizeof(double)));
    auto* dwrk = static_cast<double*>(
        api::shmalloc(api::SHMEM_REDUCE_MIN_WRKDATA_SIZE * sizeof(double)));
    for (int i = 0; i < 4; ++i) dsrc[i] = 0.5 * (me + 1);
    api::shmem_barrier_all();
    api::shmem_double_min_to_all(ddst, dsrc, 4, 0, 0, 4, dwrk, psync);
    api::shmem_barrier_all();
    for (int i = 0; i < 4; ++i) EXPECT_EQ(ddst[i], 0.5);
    api::shmem_barrier_all();

    api::shfree(dwrk);
    api::shfree(ddst);
    api::shfree(dsrc);
    api::shfree(iwrk);
    api::shfree(idst);
    api::shfree(isrc);
    api::shfree(psync);
  });
}

TEST(Api, ComplexReductions) {
  tshmem::run_spmd(tilesim::tile_gx36(), 3, [](Context& ctx) {
    api::start_pes(0);
    using cf = std::complex<float>;
    long* psync = alloc_psync(ctx, api::SHMEM_REDUCE_SYNC_SIZE);
    auto* src = static_cast<cf*>(api::shmalloc(2 * sizeof(cf)));
    auto* dst = static_cast<cf*>(api::shmalloc(2 * sizeof(cf)));
    auto* wrk = static_cast<cf*>(
        api::shmalloc(api::SHMEM_REDUCE_MIN_WRKDATA_SIZE * sizeof(cf)));
    src[0] = cf(1.0f, static_cast<float>(api::_my_pe()));
    src[1] = cf(2.0f, 0.0f);
    api::shmem_barrier_all();
    api::shmem_complexf_sum_to_all(dst, src, 2, 0, 0, 3, wrk, psync);
    api::shmem_barrier_all();
    EXPECT_EQ(dst[0], cf(3.0f, 3.0f));  // imag: 0+1+2
    EXPECT_EQ(dst[1], cf(6.0f, 0.0f));
    api::shmem_barrier_all();
    api::shmem_complexf_prod_to_all(dst, src, 2, 0, 0, 3, wrk, psync);
    api::shmem_barrier_all();
    EXPECT_EQ(dst[1], cf(8.0f, 0.0f));  // 2^3
    api::shmem_barrier_all();
    api::shfree(wrk);
    api::shfree(dst);
    api::shfree(src);
    api::shfree(psync);
  });
}

TEST(Api, AtomicsAndLocks) {
  tshmem::run_spmd(tilesim::tile_gx36(), 4, [](Context&) {
    api::start_pes(0);
    auto* counter = static_cast<long*>(api::shmalloc(sizeof(long)));
    auto* lock = static_cast<long*>(api::shmalloc(sizeof(long)));
    if (api::_my_pe() == 0) {
      *counter = 0;
      *lock = 0;
    }
    api::shmem_barrier_all();
    (void)api::shmem_long_finc(counter, 0);
    api::shmem_long_add(counter, 10, 0);
    api::shmem_set_lock(lock);
    api::shmem_clear_lock(lock);
    api::shmem_barrier_all();
    if (api::_my_pe() == 0) {
      EXPECT_EQ(*counter, 4 * 11);
    }
    api::shmem_barrier_all();
    api::shfree(lock);
    api::shfree(counter);
  });
}

TEST(Api, WaitFamilies) {
  tshmem::run_spmd(tilesim::tile_gx36(), 2, [](Context&) {
    api::start_pes(0);
    auto* flag = static_cast<long*>(api::shmalloc(sizeof(long)));
    auto* iflag = static_cast<int*>(api::shmalloc(sizeof(int)));
    *flag = 0;
    *iflag = 0;
    api::shmem_barrier_all();
    if (api::_my_pe() == 0) {
      api::shmem_long_p(flag, 5, 1);
      api::shmem_int_p(iflag, -3, 1);
    } else {
      api::shmem_wait(flag, 0);
      EXPECT_EQ(*flag, 5);
      api::shmem_int_wait_until(iflag, api::SHMEM_CMP_LT, 0);
      EXPECT_EQ(*iflag, -3);
    }
    api::shmem_barrier_all();
    api::shfree(iflag);
    api::shfree(flag);
  });
}

TEST(Api, ActiveSetBarrier) {
  tshmem::run_spmd(tilesim::tile_gx36(), 6, [](Context& ctx) {
    api::start_pes(0);
    long* psync = alloc_psync(ctx, api::SHMEM_BARRIER_SYNC_SIZE);
    if (api::_my_pe() % 2 == 0) {
      api::shmem_barrier(0, 1, 3, psync);  // PEs 0, 2, 4
    }
    api::shmem_barrier_all();
    EXPECT_THROW(api::shmem_barrier(0, 1, 3, nullptr), std::invalid_argument);
    api::shmem_barrier_all();
    api::shfree(psync);
  });
}

TEST(Api, PtrAndAccessibility) {
  tshmem::run_spmd(tilesim::tile_gx36(), 2, [](Context&) {
    api::start_pes(0);
    auto* v = static_cast<int*>(api::shmalloc(sizeof(int)));
    *v = api::_my_pe() + 400;
    api::shmem_barrier_all();
    const int other = 1 - api::_my_pe();
    EXPECT_EQ(api::shmem_addr_accessible(v, other), 1);
    auto* remote = static_cast<int*>(api::shmem_ptr(v, other));
    ASSERT_NE(remote, nullptr);
    EXPECT_EQ(*remote, other + 400);
    api::shmem_barrier_all();
    api::shfree(v);
  });
}

TEST(Api, CacheRoutinesAreNoops) {
  tshmem::run_spmd(tilesim::tile_gx36(), 1, [](Context&) {
    api::start_pes(0);
    api::shmem_clear_cache_inv();
    api::shmem_set_cache_inv();
    api::shmem_udcflush();
    int x = 0;
    api::shmem_clear_cache_line_inv(&x);
    api::shmem_set_cache_line_inv(&x);
    api::shmem_udcflush_line(&x);
  });
}

TEST(Api, FenceQuietAndFinalize) {
  tshmem::run_spmd(tilesim::tile_gx36(), 2, [](Context&) {
    api::start_pes(0);
    auto* v = static_cast<long*>(api::shmalloc(sizeof(long)));
    api::shmem_long_p(v, 1, 1 - api::_my_pe());
    api::shmem_fence();
    api::shmem_quiet();
    api::shmem_barrier_all();
    api::shfree(v);
    api::shmem_finalize();
  });
}

}  // namespace
