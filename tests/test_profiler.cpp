// Tests for the virtual-time critical-path profiler (obs/profiler, ISSUE 7
// tentpole): span nesting/attribution, critical-path correctness on
// hand-built DAGs (serial chain, fork-join barrier, NBI-overlap
// self-edge), deterministic reports across host schedules, the
// zero-virtual-cost contract (profile on vs off bit-identical), the
// tshmem.profile.v1 JSON shape, the folded/flow exports, and the
// perf_run.py selftest (tshmem.bench.v1 schema logic).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exporters.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "sim/device.hpp"
#include "sim/profile_hook.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using obs::JsonValue;
using obs::ProfileReport;
using obs::Profiler;
using tilesim::ProfPhase;
using tilesim::ps_t;

ps_t phase_total(const ProfileReport& r, ProfPhase p) {
  return r.phase_ps[static_cast<std::size_t>(p)];
}

ps_t crit_total(const ProfileReport& r, ProfPhase p) {
  return r.crit_phase_ps[static_cast<std::size_t>(p)];
}

const obs::ProfileSite* find_site(const ProfileReport& r,
                                  const std::string& phase,
                                  const std::string& site) {
  for (const auto& s : r.sites) {
    if (s.phase == phase && s.site == site) return &s;
  }
  return nullptr;
}

// ===========================================================================
// Span mechanics (profiler driven directly as a ProfileSink)
// ===========================================================================

TEST(Profiler, SerialSpansAttributePhases) {
  tilesim::Device device(tilesim::tile_gx36());
  Profiler prof(device);
  prof.on_span_begin(0, ProfPhase::kDma, "put", 100);
  prof.on_span_end(0, 500);
  prof.on_span_begin(0, ProfPhase::kBarrier, "bar", 500);
  prof.on_span_end(0, 900);

  const ProfileReport r = prof.report();
  EXPECT_EQ(r.npes, device.tile_count());
  EXPECT_EQ(r.total_vt_ps, 900u);
  EXPECT_EQ(phase_total(r, ProfPhase::kDma), 400u);
  EXPECT_EQ(phase_total(r, ProfPhase::kBarrier), 400u);
  // [0, 100) had no open span: residual compute.
  EXPECT_EQ(phase_total(r, ProfPhase::kCompute), 100u);

  const auto* put = find_site(r, "dma", "put");
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->calls, 1u);
  EXPECT_EQ(put->self_ps, 400u);
  EXPECT_EQ(put->total_ps, 400u);
}

TEST(Profiler, NestedSpansSplitSelfAndTotal) {
  tilesim::Device device(tilesim::tile_gx36());
  Profiler prof(device);
  prof.on_span_begin(0, ProfPhase::kBarrier, "bar", 0);
  prof.on_span_begin(0, ProfPhase::kDma, "quiet", 100);
  prof.on_span_end(0, 300);
  prof.on_span_end(0, 1000);

  const ProfileReport r = prof.report();
  // The innermost-phase timeline splits the interval, so per-phase totals
  // count the nested window once.
  EXPECT_EQ(phase_total(r, ProfPhase::kBarrier), 800u);
  EXPECT_EQ(phase_total(r, ProfPhase::kDma), 200u);

  const auto* bar = find_site(r, "barrier", "bar");
  ASSERT_NE(bar, nullptr);
  EXPECT_EQ(bar->self_ps, 800u);   // 1000 minus the nested 200
  EXPECT_EQ(bar->total_ps, 1000u);
  const auto* quiet = find_site(r, "dma", "quiet");
  ASSERT_NE(quiet, nullptr);
  EXPECT_EQ(quiet->self_ps, 200u);

  // Folded stacks carry the full frame chain.
  EXPECT_TRUE(r.folded.count("pe0;barrier:bar"));
  EXPECT_TRUE(r.folded.count("pe0;barrier:bar;dma:quiet"));
  EXPECT_EQ(r.folded.at("pe0;barrier:bar;dma:quiet"), 200u);
}

// ===========================================================================
// Critical path on hand-built DAGs
// ===========================================================================

TEST(Profiler, CriticalPathSerialChainHopsThroughProducers) {
  // PE0 works [0,100], PE1 waits on PE0 then works [100,300], PE2 waits on
  // PE1 then works [300,600]. The path must hop 2 <- 1 <- 0 and attribute
  // all 600 ps to the dma spans.
  tilesim::Device device(tilesim::tile_gx36());
  Profiler prof(device);
  prof.on_span_begin(0, ProfPhase::kDma, "put", 0);
  prof.on_span_end(0, 100);
  prof.on_wait_edge(1, 0, ProfPhase::kUdn, "udn_recv", 0, 100);
  prof.on_span_begin(1, ProfPhase::kDma, "put", 100);
  prof.on_span_end(1, 300);
  prof.on_wait_edge(2, 1, ProfPhase::kUdn, "udn_recv", 0, 300);
  prof.on_span_begin(2, ProfPhase::kDma, "put", 300);
  prof.on_span_end(2, 600);

  const ProfileReport r = prof.report();
  EXPECT_EQ(r.crit_epoch_vt_ps, 600u);
  ASSERT_EQ(r.critical_path.size(), 5u);  // 3 local + 2 wait
  EXPECT_EQ(r.critical_path.front().kind, "local");
  EXPECT_EQ(r.critical_path.front().pe, 0);
  EXPECT_EQ(r.critical_path.back().kind, "local");
  EXPECT_EQ(r.critical_path.back().pe, 2);
  // Forward order alternates local/wait; the waits carry their producers.
  EXPECT_EQ(r.critical_path[1].kind, "wait");
  EXPECT_EQ(r.critical_path[1].pe, 1);
  EXPECT_EQ(r.critical_path[1].src_pe, 0);
  EXPECT_EQ(r.critical_path[1].site, "udn_recv");
  EXPECT_EQ(r.critical_path[3].src_pe, 1);
  // Cross-PE waits are off-path (producer activity covers them): every
  // on-path picosecond lands in dma.
  EXPECT_EQ(crit_total(r, ProfPhase::kDma), 600u);
  EXPECT_EQ(r.dominant_phase, "dma");
  EXPECT_DOUBLE_EQ(r.dominant_share, 1.0);
}

TEST(Profiler, CriticalPathForkJoinBarrier) {
  // Three PEs join a barrier released at 600 by the last arriver PE1
  // (arrived 500 after computing [0,500]). The walk must route through
  // PE1: its pre-barrier compute is on-path, the other arrivals are not.
  tilesim::Device device(tilesim::tile_gx36());
  Profiler prof(device);
  prof.on_wait_edge(0, 1, ProfPhase::kBarrier, "tmc_barrier", 300, 600);
  prof.on_span_begin(1, ProfPhase::kCompute, "work", 0);
  prof.on_span_end(1, 500);
  prof.on_wait_edge(1, 1, ProfPhase::kBarrier, "tmc_barrier", 500, 600);
  prof.on_wait_edge(2, 1, ProfPhase::kBarrier, "tmc_barrier", 200, 600);

  const ProfileReport r = prof.report();
  EXPECT_EQ(r.crit_epoch_vt_ps, 600u);
  // PE1's own barrier window [500,600] is on-path (self edge), its compute
  // [0,500] fills the rest; dominant phase is compute at 5/6.
  EXPECT_EQ(crit_total(r, ProfPhase::kBarrier), 100u);
  EXPECT_EQ(crit_total(r, ProfPhase::kCompute), 500u);
  EXPECT_EQ(r.dominant_phase, "compute");
  EXPECT_NEAR(r.dominant_share, 5.0 / 6.0, 1e-9);
  bool saw_barrier_wait = false;
  for (const auto& seg : r.critical_path) {
    if (seg.kind == "wait" && seg.site == "tmc_barrier") {
      EXPECT_EQ(seg.src_pe, 1);
      saw_barrier_wait = true;
    }
  }
  EXPECT_TRUE(saw_barrier_wait);
}

TEST(Profiler, CriticalPathNbiOverlapSelfEdge) {
  // NBI overlap: PE0 issues work [0,100], then quiet() drains its own DMA
  // until 400. The drain is a self edge — on-path, attributed to dma.
  tilesim::Device device(tilesim::tile_gx36());
  Profiler prof(device);
  prof.on_span_begin(0, ProfPhase::kDma, "shmem_put_nbi", 0);
  prof.on_span_end(0, 100);
  prof.on_wait_edge(0, 0, ProfPhase::kDma, "dma_drain", 100, 400);

  const ProfileReport r = prof.report();
  EXPECT_EQ(r.crit_epoch_vt_ps, 400u);
  EXPECT_EQ(crit_total(r, ProfPhase::kDma), 400u);  // 100 span + 300 drain
  EXPECT_EQ(r.dominant_phase, "dma");
  bool saw_drain = false;
  for (const auto& seg : r.critical_path) {
    if (seg.kind == "wait" && seg.site == "dma_drain") saw_drain = true;
  }
  EXPECT_TRUE(saw_drain);
}

TEST(Profiler, TopKWaitEdgesTruncatesDeterministically) {
  tilesim::Device device(tilesim::tile_gx36());
  Profiler prof(device);
  prof.set_top_k(2);
  prof.on_wait_edge(1, 0, ProfPhase::kUdn, "a", 0, 500);
  prof.on_wait_edge(2, 0, ProfPhase::kUdn, "b", 0, 300);
  prof.on_wait_edge(3, 0, ProfPhase::kUdn, "c", 0, 100);

  const ProfileReport r = prof.report();
  ASSERT_EQ(r.top_edges.size(), 2u);
  EXPECT_EQ(r.top_edges[0].site, "a");
  EXPECT_EQ(r.top_edges[0].wait_ps, 500u);
  EXPECT_EQ(r.top_edges[1].site, "b");
}

TEST(Profiler, EpochsAccumulateAcrossClockResets) {
  tilesim::Device device(tilesim::tile_gx36());
  Profiler prof(device);
  prof.on_span_begin(0, ProfPhase::kDma, "put", 0);
  prof.on_span_end(0, 100);
  prof.on_clock_reset();  // closes epoch 1 at vt 100
  prof.on_span_begin(0, ProfPhase::kBarrier, "bar", 0);
  prof.on_span_end(0, 50);

  const ProfileReport r = prof.report();
  EXPECT_EQ(r.epochs, 2u);  // folded epoch + tail
  EXPECT_EQ(r.total_vt_ps, 150u);
  EXPECT_EQ(phase_total(r, ProfPhase::kDma), 100u);
  EXPECT_EQ(phase_total(r, ProfPhase::kBarrier), 50u);
  // The critical path keeps the longest epoch (the first, vt 100).
  EXPECT_EQ(r.crit_epoch_vt_ps, 100u);
  EXPECT_EQ(r.dominant_phase, "dma");
}

// ===========================================================================
// Runtime integration
// ===========================================================================

// Staggered compute + barriers + NBI traffic: every phase the real
// runtime instruments shows up.
void workload(tshmem::Context& ctx, std::vector<std::uint64_t>* end_ps) {
  const int npes = ctx.num_pes();
  auto* buf = static_cast<std::byte*>(ctx.shmalloc(1 << 14));
  ctx.barrier_all();
  for (int round = 0; round < 3; ++round) {
    ctx.charge_int_ops(5'000 * (ctx.my_pe() + 1));  // staggered arrivals
    ctx.put(buf, buf + (1 << 13), 1024, (ctx.my_pe() + 1) % npes);
    ctx.put_nbi(buf, buf + (1 << 13), 512, (ctx.my_pe() + 1) % npes);
    ctx.quiet();
    ctx.barrier_all();
  }
  ctx.shfree(buf);
  if (end_ps != nullptr) {
    (*end_ps)[static_cast<std::size_t>(ctx.my_pe())] = ctx.clock().now();
  }
}

TEST(Profiler, VirtualTimeBitIdenticalWithProfileOnOrOff) {
  // The zero-virtual-cost contract (same as metrics and tshmem-check):
  // identical per-PE end clocks whether the profiler observes or not.
  constexpr int kPes = 4;
  const auto run_with = [&](bool profile) {
    tshmem::RuntimeOptions opts;
    opts.profile = profile;
    tshmem::Runtime rt(tilesim::tile_gx36(), opts);
    std::vector<std::uint64_t> end_ps(kPes, 0);
    rt.run(kPes, [&](tshmem::Context& ctx) { workload(ctx, &end_ps); });
    return end_ps;
  };
  const auto off = run_with(false);
  const auto on = run_with(true);
  ASSERT_EQ(off.size(), on.size());
  for (int pe = 0; pe < kPes; ++pe) {
    EXPECT_EQ(off[static_cast<std::size_t>(pe)],
              on[static_cast<std::size_t>(pe)])
        << "virtual time diverged on pe " << pe;
  }
  for (const std::uint64_t t : off) EXPECT_GT(t, 0u);
}

TEST(Profiler, ReportDeterministicAcrossHostSchedules) {
  // Virtual-time profiles depend only on the virtual schedule: two
  // independent runs (different host interleavings) must serialize to the
  // same bytes.
  const auto run_once = [&] {
    tshmem::RuntimeOptions opts;
    opts.profile = true;
    tshmem::Runtime rt(tilesim::tile_gx36(), opts);
    rt.run(4, [&](tshmem::Context& ctx) { workload(ctx, nullptr); });
    std::ostringstream os;
    obs::write_profile_json(os, rt.profiler()->report());
    return os.str();
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Profiler, RuntimeProfileCapturesWaitEdgesAndSpans) {
  tshmem::RuntimeOptions opts;
  opts.profile = true;
  tshmem::Runtime rt(tilesim::tile_gx36(), opts);
  rt.run(4, [&](tshmem::Context& ctx) { workload(ctx, nullptr); });
  const ProfileReport r = rt.profiler()->report();

  EXPECT_EQ(r.npes, 36);
  EXPECT_GT(r.total_vt_ps, 0u);
  EXPECT_NE(find_site(r, "dma", "shmem_put"), nullptr);
  EXPECT_NE(find_site(r, "dma", "shmem_put_nbi"), nullptr);
  EXPECT_NE(find_site(r, "dma", "shmem_quiet"), nullptr);
  EXPECT_NE(find_site(r, "barrier", "shmem_barrier"), nullptr);
  EXPECT_FALSE(r.top_edges.empty());
  EXPECT_FALSE(r.critical_path.empty());
  EXPECT_FALSE(r.dominant_phase.empty());
  EXPECT_GT(r.dominant_share, 0.0);
  EXPECT_LE(r.dominant_share, 1.0);
  // Staggered compute makes the last arriver's compute on-path; the other
  // PEs' barrier waits show as wait edges.
  EXPECT_GT(crit_total(r, ProfPhase::kCompute), 0u);
}

TEST(Profiler, EnvVarEnablesProfiler) {
  ASSERT_EQ(setenv("TSHMEM_PROFILE", "1", 1), 0);
  tshmem::Runtime rt(tilesim::tile_gx36(), {});
  EXPECT_TRUE(rt.profile_enabled());
  EXPECT_NE(rt.profiler(), nullptr);
  ASSERT_EQ(unsetenv("TSHMEM_PROFILE"), 0);
  tshmem::Runtime off(tilesim::tile_gx36(), {});
  EXPECT_FALSE(off.profile_enabled());
  EXPECT_EQ(off.profiler(), nullptr);
}

// ===========================================================================
// Exports: JSON schema shape, folded stacks, Perfetto flows
// ===========================================================================

TEST(Profiler, ProfileJsonSchemaShape) {
  tshmem::RuntimeOptions opts;
  opts.profile = true;
  tshmem::Runtime rt(tilesim::tile_gx36(), opts);
  rt.run(4, [&](tshmem::Context& ctx) { workload(ctx, nullptr); });
  std::ostringstream os;
  obs::write_profile_json(os, rt.profiler()->report());

  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.at("schema").as_string(), obs::kProfileSchema);
  EXPECT_EQ(doc.at("npes").as_int(), 36);
  EXPECT_GT(doc.at("total_vt_ps").as_uint(), 0u);
  ASSERT_EQ(doc.at("phases").size(), 7u);
  EXPECT_EQ(doc.at("phases").at(std::size_t{0}).at("phase").as_string(),
            "compute");
  ASSERT_GT(doc.at("pes").size(), 0u);
  ASSERT_GT(doc.at("sites").size(), 0u);
  const JsonValue& site = doc.at("sites").at(std::size_t{0});
  EXPECT_TRUE(site.contains("phase"));
  EXPECT_TRUE(site.contains("site"));
  EXPECT_TRUE(site.contains("calls"));
  EXPECT_TRUE(site.contains("self_ps"));
  EXPECT_TRUE(site.contains("total_ps"));
  ASSERT_GT(doc.at("top_wait_edges").size(), 0u);
  const JsonValue& crit = doc.at("critical_path");
  EXPECT_GT(crit.at("epoch_vt_ps").as_uint(), 0u);
  EXPECT_FALSE(crit.at("dominant_phase").as_string().empty());
  ASSERT_GT(crit.at("segments").size(), 0u);
  const JsonValue& seg = crit.at("segments").at(std::size_t{0});
  const std::string kind = seg.at("kind").as_string();
  EXPECT_TRUE(kind == "local" || kind == "wait");
}

TEST(Profiler, FoldedExportIsFlamegraphShaped) {
  tilesim::Device device(tilesim::tile_gx36());
  Profiler prof(device);
  prof.on_span_begin(0, ProfPhase::kBarrier, "bar", 0);
  prof.on_span_begin(0, ProfPhase::kDma, "quiet", 100);
  prof.on_span_end(0, 300);
  prof.on_span_end(0, 1000);
  std::ostringstream os;
  obs::write_profile_folded(os, prof.report());
  const std::string out = os.str();
  EXPECT_NE(out.find("pe0;barrier:bar 800\n"), std::string::npos);
  EXPECT_NE(out.find("pe0;barrier:bar;dma:quiet 200\n"), std::string::npos);
}

TEST(Profiler, FlowEventsPairUpInTraceJson) {
  tilesim::Device device(tilesim::tile_gx36());
  Profiler prof(device);
  prof.on_span_begin(0, ProfPhase::kDma, "put", 0);
  prof.on_span_end(0, 100);
  prof.on_wait_edge(1, 0, ProfPhase::kUdn, "udn_recv", 0, 100);
  prof.on_span_begin(1, ProfPhase::kDma, "put", 100);
  prof.on_span_end(1, 300);

  const ProfileReport r = prof.report();
  const std::vector<obs::TraceFlow> flows =
      obs::profile_flow_events(r, /*pid=*/0);
  ASSERT_FALSE(flows.empty());
  EXPECT_EQ(flows[0].src_tile, 0);
  EXPECT_EQ(flows[0].dst_tile, 1);

  std::ostringstream os;
  obs::write_chrome_trace_json(os, {}, flows);
  const JsonValue doc = JsonValue::parse(os.str());
  bool saw_s = false;
  bool saw_f = false;
  for (std::size_t i = 0; i < doc.at("traceEvents").size(); ++i) {
    const std::string ph =
        doc.at("traceEvents").at(i).at("ph").as_string();
    saw_s = saw_s || ph == "s";
    saw_f = saw_f || ph == "f";
  }
  EXPECT_TRUE(saw_s);
  EXPECT_TRUE(saw_f);
}

// ===========================================================================
// Perf harness (tools/perf_run.py): schema + regression logic selftest
// ===========================================================================

TEST(Profiler, PerfRunSelftestPasses) {
  const std::string cmd =
      std::string("python3 ") + TSHMEM_SOURCE_DIR
      + "/tools/perf_run.py --selftest >/dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
}

}  // namespace
