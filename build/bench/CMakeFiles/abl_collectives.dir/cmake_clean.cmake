file(REMOVE_RECURSE
  "CMakeFiles/abl_collectives.dir/abl_collectives.cpp.o"
  "CMakeFiles/abl_collectives.dir/abl_collectives.cpp.o.d"
  "abl_collectives"
  "abl_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
