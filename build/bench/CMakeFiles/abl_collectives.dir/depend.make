# Empty dependencies file for abl_collectives.
# This may be replaced when dependencies are built.
