file(REMOVE_RECURSE
  "CMakeFiles/ext_libraries.dir/ext_libraries.cpp.o"
  "CMakeFiles/ext_libraries.dir/ext_libraries.cpp.o.d"
  "ext_libraries"
  "ext_libraries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_libraries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
