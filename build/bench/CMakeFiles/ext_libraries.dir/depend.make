# Empty dependencies file for ext_libraries.
# This may be replaced when dependencies are built.
