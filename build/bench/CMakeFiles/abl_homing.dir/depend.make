# Empty dependencies file for abl_homing.
# This may be replaced when dependencies are built.
