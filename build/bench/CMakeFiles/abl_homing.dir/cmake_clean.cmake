file(REMOVE_RECURSE
  "CMakeFiles/abl_homing.dir/abl_homing.cpp.o"
  "CMakeFiles/abl_homing.dir/abl_homing.cpp.o.d"
  "abl_homing"
  "abl_homing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_homing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
