# Empty dependencies file for fig06_putget_dynamic.
# This may be replaced when dependencies are built.
