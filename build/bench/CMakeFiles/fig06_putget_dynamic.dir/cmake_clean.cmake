file(REMOVE_RECURSE
  "CMakeFiles/fig06_putget_dynamic.dir/fig06_putget_dynamic.cpp.o"
  "CMakeFiles/fig06_putget_dynamic.dir/fig06_putget_dynamic.cpp.o.d"
  "fig06_putget_dynamic"
  "fig06_putget_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_putget_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
