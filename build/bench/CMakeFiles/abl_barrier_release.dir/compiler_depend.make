# Empty compiler generated dependencies file for abl_barrier_release.
# This may be replaced when dependencies are built.
