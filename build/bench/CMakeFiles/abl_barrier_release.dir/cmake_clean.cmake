file(REMOVE_RECURSE
  "CMakeFiles/abl_barrier_release.dir/abl_barrier_release.cpp.o"
  "CMakeFiles/abl_barrier_release.dir/abl_barrier_release.cpp.o.d"
  "abl_barrier_release"
  "abl_barrier_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_barrier_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
