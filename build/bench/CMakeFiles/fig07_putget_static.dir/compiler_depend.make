# Empty compiler generated dependencies file for fig07_putget_static.
# This may be replaced when dependencies are built.
