file(REMOVE_RECURSE
  "CMakeFiles/fig07_putget_static.dir/fig07_putget_static.cpp.o"
  "CMakeFiles/fig07_putget_static.dir/fig07_putget_static.cpp.o.d"
  "fig07_putget_static"
  "fig07_putget_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_putget_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
