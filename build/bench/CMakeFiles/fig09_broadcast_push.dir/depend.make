# Empty dependencies file for fig09_broadcast_push.
# This may be replaced when dependencies are built.
