file(REMOVE_RECURSE
  "CMakeFiles/fig09_broadcast_push.dir/fig09_broadcast_push.cpp.o"
  "CMakeFiles/fig09_broadcast_push.dir/fig09_broadcast_push.cpp.o.d"
  "fig09_broadcast_push"
  "fig09_broadcast_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_broadcast_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
