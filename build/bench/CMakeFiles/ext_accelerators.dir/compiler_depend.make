# Empty compiler generated dependencies file for ext_accelerators.
# This may be replaced when dependencies are built.
