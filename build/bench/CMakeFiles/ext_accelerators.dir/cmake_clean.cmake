file(REMOVE_RECURSE
  "CMakeFiles/ext_accelerators.dir/ext_accelerators.cpp.o"
  "CMakeFiles/ext_accelerators.dir/ext_accelerators.cpp.o.d"
  "ext_accelerators"
  "ext_accelerators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_accelerators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
