# Empty compiler generated dependencies file for fig10_broadcast_pull.
# This may be replaced when dependencies are built.
