file(REMOVE_RECURSE
  "CMakeFiles/fig10_broadcast_pull.dir/fig10_broadcast_pull.cpp.o"
  "CMakeFiles/fig10_broadcast_pull.dir/fig10_broadcast_pull.cpp.o.d"
  "fig10_broadcast_pull"
  "fig10_broadcast_pull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_broadcast_pull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
