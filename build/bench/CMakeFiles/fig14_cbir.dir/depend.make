# Empty dependencies file for fig14_cbir.
# This may be replaced when dependencies are built.
