file(REMOVE_RECURSE
  "CMakeFiles/fig14_cbir.dir/fig14_cbir.cpp.o"
  "CMakeFiles/fig14_cbir.dir/fig14_cbir.cpp.o.d"
  "fig14_cbir"
  "fig14_cbir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cbir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
