file(REMOVE_RECURSE
  "CMakeFiles/fig04_udn_latency.dir/fig04_udn_latency.cpp.o"
  "CMakeFiles/fig04_udn_latency.dir/fig04_udn_latency.cpp.o.d"
  "fig04_udn_latency"
  "fig04_udn_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_udn_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
