# Empty compiler generated dependencies file for fig11_fcollect.
# This may be replaced when dependencies are built.
