file(REMOVE_RECURSE
  "CMakeFiles/fig11_fcollect.dir/fig11_fcollect.cpp.o"
  "CMakeFiles/fig11_fcollect.dir/fig11_fcollect.cpp.o.d"
  "fig11_fcollect"
  "fig11_fcollect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_fcollect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
