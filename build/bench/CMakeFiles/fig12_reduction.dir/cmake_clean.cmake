file(REMOVE_RECURSE
  "CMakeFiles/fig12_reduction.dir/fig12_reduction.cpp.o"
  "CMakeFiles/fig12_reduction.dir/fig12_reduction.cpp.o.d"
  "fig12_reduction"
  "fig12_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
