# Empty dependencies file for fig12_reduction.
# This may be replaced when dependencies are built.
