file(REMOVE_RECURSE
  "CMakeFiles/fig13_fft2d.dir/fig13_fft2d.cpp.o"
  "CMakeFiles/fig13_fft2d.dir/fig13_fft2d.cpp.o.d"
  "fig13_fft2d"
  "fig13_fft2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fft2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
