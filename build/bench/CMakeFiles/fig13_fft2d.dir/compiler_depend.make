# Empty compiler generated dependencies file for fig13_fft2d.
# This may be replaced when dependencies are built.
