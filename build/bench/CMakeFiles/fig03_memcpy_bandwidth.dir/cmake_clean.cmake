file(REMOVE_RECURSE
  "CMakeFiles/fig03_memcpy_bandwidth.dir/fig03_memcpy_bandwidth.cpp.o"
  "CMakeFiles/fig03_memcpy_bandwidth.dir/fig03_memcpy_bandwidth.cpp.o.d"
  "fig03_memcpy_bandwidth"
  "fig03_memcpy_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_memcpy_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
