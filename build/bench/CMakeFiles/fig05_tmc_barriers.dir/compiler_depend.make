# Empty compiler generated dependencies file for fig05_tmc_barriers.
# This may be replaced when dependencies are built.
