file(REMOVE_RECURSE
  "CMakeFiles/fig05_tmc_barriers.dir/fig05_tmc_barriers.cpp.o"
  "CMakeFiles/fig05_tmc_barriers.dir/fig05_tmc_barriers.cpp.o.d"
  "fig05_tmc_barriers"
  "fig05_tmc_barriers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_tmc_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
