# Empty dependencies file for abl_cachesim.
# This may be replaced when dependencies are built.
