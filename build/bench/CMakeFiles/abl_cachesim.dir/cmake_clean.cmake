file(REMOVE_RECURSE
  "CMakeFiles/abl_cachesim.dir/abl_cachesim.cpp.o"
  "CMakeFiles/abl_cachesim.dir/abl_cachesim.cpp.o.d"
  "abl_cachesim"
  "abl_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
