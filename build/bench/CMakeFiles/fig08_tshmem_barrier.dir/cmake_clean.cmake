file(REMOVE_RECURSE
  "CMakeFiles/fig08_tshmem_barrier.dir/fig08_tshmem_barrier.cpp.o"
  "CMakeFiles/fig08_tshmem_barrier.dir/fig08_tshmem_barrier.cpp.o.d"
  "fig08_tshmem_barrier"
  "fig08_tshmem_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_tshmem_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
