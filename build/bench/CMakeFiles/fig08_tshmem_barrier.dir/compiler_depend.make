# Empty compiler generated dependencies file for fig08_tshmem_barrier.
# This may be replaced when dependencies are built.
