file(REMOVE_RECURSE
  "CMakeFiles/ext_multidev.dir/ext_multidev.cpp.o"
  "CMakeFiles/ext_multidev.dir/ext_multidev.cpp.o.d"
  "ext_multidev"
  "ext_multidev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multidev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
