# Empty compiler generated dependencies file for ext_multidev.
# This may be replaced when dependencies are built.
