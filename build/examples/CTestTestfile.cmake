# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--pes" "6" "--device" "gx36")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fft2d "/root/repo/build/examples/fft2d_demo" "--pes" "8" "--n" "128" "--device" "gx36")
set_tests_properties(example_fft2d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fft2d_pro "/root/repo/build/examples/fft2d_demo" "--pes" "4" "--n" "64" "--device" "pro64")
set_tests_properties(example_fft2d_pro PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cbir "/root/repo/build/examples/cbir_search" "--pes" "6" "--images" "150" "--device" "gx36")
set_tests_properties(example_cbir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat "/root/repo/build/examples/heat_stencil" "--pes" "4" "--n" "64" "--iters" "60" "--device" "gx36")
set_tests_properties(example_heat PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_pro "/root/repo/build/examples/heat_stencil" "--pes" "8" "--n" "64" "--iters" "30" "--device" "pro64")
set_tests_properties(example_heat_pro PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multidev "/root/repo/build/examples/multidev_pipeline" "--pes" "3" "--blocks" "6" "--block-kb" "16")
set_tests_properties(example_multidev PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_summa "/root/repo/build/examples/matmul_summa" "--rows" "2" "--cols" "2" "--n" "64")
set_tests_properties(example_summa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_summa_4x4 "/root/repo/build/examples/matmul_summa" "--rows" "4" "--cols" "4" "--n" "96" "--device" "pro64")
set_tests_properties(example_summa_4x4 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
