file(REMOVE_RECURSE
  "CMakeFiles/fft2d_demo.dir/fft2d_demo.cpp.o"
  "CMakeFiles/fft2d_demo.dir/fft2d_demo.cpp.o.d"
  "fft2d_demo"
  "fft2d_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft2d_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
