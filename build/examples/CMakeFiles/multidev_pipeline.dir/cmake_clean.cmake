file(REMOVE_RECURSE
  "CMakeFiles/multidev_pipeline.dir/multidev_pipeline.cpp.o"
  "CMakeFiles/multidev_pipeline.dir/multidev_pipeline.cpp.o.d"
  "multidev_pipeline"
  "multidev_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidev_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
