# Empty compiler generated dependencies file for multidev_pipeline.
# This may be replaced when dependencies are built.
