# Empty dependencies file for cbir_search.
# This may be replaced when dependencies are built.
