file(REMOVE_RECURSE
  "CMakeFiles/cbir_search.dir/cbir_search.cpp.o"
  "CMakeFiles/cbir_search.dir/cbir_search.cpp.o.d"
  "cbir_search"
  "cbir_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbir_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
