file(REMOVE_RECURSE
  "CMakeFiles/tilesim.dir/cache_sim.cpp.o"
  "CMakeFiles/tilesim.dir/cache_sim.cpp.o.d"
  "CMakeFiles/tilesim.dir/config.cpp.o"
  "CMakeFiles/tilesim.dir/config.cpp.o.d"
  "CMakeFiles/tilesim.dir/device.cpp.o"
  "CMakeFiles/tilesim.dir/device.cpp.o.d"
  "CMakeFiles/tilesim.dir/mem_model.cpp.o"
  "CMakeFiles/tilesim.dir/mem_model.cpp.o.d"
  "CMakeFiles/tilesim.dir/topology.cpp.o"
  "CMakeFiles/tilesim.dir/topology.cpp.o.d"
  "CMakeFiles/tilesim.dir/trace.cpp.o"
  "CMakeFiles/tilesim.dir/trace.cpp.o.d"
  "libtilesim.a"
  "libtilesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tilesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
