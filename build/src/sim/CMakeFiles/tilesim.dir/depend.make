# Empty dependencies file for tilesim.
# This may be replaced when dependencies are built.
