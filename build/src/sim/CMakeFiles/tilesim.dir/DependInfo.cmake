
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_sim.cpp" "src/sim/CMakeFiles/tilesim.dir/cache_sim.cpp.o" "gcc" "src/sim/CMakeFiles/tilesim.dir/cache_sim.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/tilesim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/tilesim.dir/config.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/tilesim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/tilesim.dir/device.cpp.o.d"
  "/root/repo/src/sim/mem_model.cpp" "src/sim/CMakeFiles/tilesim.dir/mem_model.cpp.o" "gcc" "src/sim/CMakeFiles/tilesim.dir/mem_model.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/sim/CMakeFiles/tilesim.dir/topology.cpp.o" "gcc" "src/sim/CMakeFiles/tilesim.dir/topology.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/tilesim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/tilesim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tshmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
