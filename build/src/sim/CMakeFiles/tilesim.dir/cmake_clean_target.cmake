file(REMOVE_RECURSE
  "libtilesim.a"
)
