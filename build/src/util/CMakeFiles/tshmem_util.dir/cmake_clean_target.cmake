file(REMOVE_RECURSE
  "libtshmem_util.a"
)
