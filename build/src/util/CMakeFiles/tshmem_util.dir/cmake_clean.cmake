file(REMOVE_RECURSE
  "CMakeFiles/tshmem_util.dir/cli.cpp.o"
  "CMakeFiles/tshmem_util.dir/cli.cpp.o.d"
  "CMakeFiles/tshmem_util.dir/rng.cpp.o"
  "CMakeFiles/tshmem_util.dir/rng.cpp.o.d"
  "CMakeFiles/tshmem_util.dir/stats.cpp.o"
  "CMakeFiles/tshmem_util.dir/stats.cpp.o.d"
  "CMakeFiles/tshmem_util.dir/table.cpp.o"
  "CMakeFiles/tshmem_util.dir/table.cpp.o.d"
  "CMakeFiles/tshmem_util.dir/units.cpp.o"
  "CMakeFiles/tshmem_util.dir/units.cpp.o.d"
  "libtshmem_util.a"
  "libtshmem_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tshmem_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
