# Empty compiler generated dependencies file for tshmem_util.
# This may be replaced when dependencies are built.
