file(REMOVE_RECURSE
  "libtshmem.a"
)
