# Empty dependencies file for tshmem.
# This may be replaced when dependencies are built.
