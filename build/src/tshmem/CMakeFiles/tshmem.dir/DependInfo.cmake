
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tshmem/api.cpp" "src/tshmem/CMakeFiles/tshmem.dir/api.cpp.o" "gcc" "src/tshmem/CMakeFiles/tshmem.dir/api.cpp.o.d"
  "/root/repo/src/tshmem/cluster.cpp" "src/tshmem/CMakeFiles/tshmem.dir/cluster.cpp.o" "gcc" "src/tshmem/CMakeFiles/tshmem.dir/cluster.cpp.o.d"
  "/root/repo/src/tshmem/collectives.cpp" "src/tshmem/CMakeFiles/tshmem.dir/collectives.cpp.o" "gcc" "src/tshmem/CMakeFiles/tshmem.dir/collectives.cpp.o.d"
  "/root/repo/src/tshmem/context.cpp" "src/tshmem/CMakeFiles/tshmem.dir/context.cpp.o" "gcc" "src/tshmem/CMakeFiles/tshmem.dir/context.cpp.o.d"
  "/root/repo/src/tshmem/runtime.cpp" "src/tshmem/CMakeFiles/tshmem.dir/runtime.cpp.o" "gcc" "src/tshmem/CMakeFiles/tshmem.dir/runtime.cpp.o.d"
  "/root/repo/src/tshmem/symheap.cpp" "src/tshmem/CMakeFiles/tshmem.dir/symheap.cpp.o" "gcc" "src/tshmem/CMakeFiles/tshmem.dir/symheap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tmc/CMakeFiles/tmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tilesim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tshmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
