file(REMOVE_RECURSE
  "CMakeFiles/tshmem.dir/api.cpp.o"
  "CMakeFiles/tshmem.dir/api.cpp.o.d"
  "CMakeFiles/tshmem.dir/cluster.cpp.o"
  "CMakeFiles/tshmem.dir/cluster.cpp.o.d"
  "CMakeFiles/tshmem.dir/collectives.cpp.o"
  "CMakeFiles/tshmem.dir/collectives.cpp.o.d"
  "CMakeFiles/tshmem.dir/context.cpp.o"
  "CMakeFiles/tshmem.dir/context.cpp.o.d"
  "CMakeFiles/tshmem.dir/runtime.cpp.o"
  "CMakeFiles/tshmem.dir/runtime.cpp.o.d"
  "CMakeFiles/tshmem.dir/symheap.cpp.o"
  "CMakeFiles/tshmem.dir/symheap.cpp.o.d"
  "libtshmem.a"
  "libtshmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tshmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
