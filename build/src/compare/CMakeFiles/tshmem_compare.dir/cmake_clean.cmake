file(REMOVE_RECURSE
  "CMakeFiles/tshmem_compare.dir/fork_join.cpp.o"
  "CMakeFiles/tshmem_compare.dir/fork_join.cpp.o.d"
  "CMakeFiles/tshmem_compare.dir/msg_passing.cpp.o"
  "CMakeFiles/tshmem_compare.dir/msg_passing.cpp.o.d"
  "libtshmem_compare.a"
  "libtshmem_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tshmem_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
