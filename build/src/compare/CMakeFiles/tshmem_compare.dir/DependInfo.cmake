
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compare/fork_join.cpp" "src/compare/CMakeFiles/tshmem_compare.dir/fork_join.cpp.o" "gcc" "src/compare/CMakeFiles/tshmem_compare.dir/fork_join.cpp.o.d"
  "/root/repo/src/compare/msg_passing.cpp" "src/compare/CMakeFiles/tshmem_compare.dir/msg_passing.cpp.o" "gcc" "src/compare/CMakeFiles/tshmem_compare.dir/msg_passing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tmc/CMakeFiles/tmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tilesim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tshmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
