file(REMOVE_RECURSE
  "libtshmem_compare.a"
)
