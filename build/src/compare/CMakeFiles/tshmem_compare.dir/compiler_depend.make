# Empty compiler generated dependencies file for tshmem_compare.
# This may be replaced when dependencies are built.
