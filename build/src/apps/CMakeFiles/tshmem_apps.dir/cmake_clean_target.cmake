file(REMOVE_RECURSE
  "libtshmem_apps.a"
)
