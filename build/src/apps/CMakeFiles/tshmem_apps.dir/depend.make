# Empty dependencies file for tshmem_apps.
# This may be replaced when dependencies are built.
