file(REMOVE_RECURSE
  "CMakeFiles/tshmem_apps.dir/cbir.cpp.o"
  "CMakeFiles/tshmem_apps.dir/cbir.cpp.o.d"
  "CMakeFiles/tshmem_apps.dir/fft.cpp.o"
  "CMakeFiles/tshmem_apps.dir/fft.cpp.o.d"
  "libtshmem_apps.a"
  "libtshmem_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tshmem_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
