file(REMOVE_RECURSE
  "CMakeFiles/tmc.dir/alloc.cpp.o"
  "CMakeFiles/tmc.dir/alloc.cpp.o.d"
  "CMakeFiles/tmc.dir/barrier.cpp.o"
  "CMakeFiles/tmc.dir/barrier.cpp.o.d"
  "CMakeFiles/tmc.dir/common_memory.cpp.o"
  "CMakeFiles/tmc.dir/common_memory.cpp.o.d"
  "CMakeFiles/tmc.dir/interrupt.cpp.o"
  "CMakeFiles/tmc.dir/interrupt.cpp.o.d"
  "CMakeFiles/tmc.dir/mica.cpp.o"
  "CMakeFiles/tmc.dir/mica.cpp.o.d"
  "CMakeFiles/tmc.dir/mpipe.cpp.o"
  "CMakeFiles/tmc.dir/mpipe.cpp.o.d"
  "CMakeFiles/tmc.dir/stn.cpp.o"
  "CMakeFiles/tmc.dir/stn.cpp.o.d"
  "CMakeFiles/tmc.dir/udn.cpp.o"
  "CMakeFiles/tmc.dir/udn.cpp.o.d"
  "libtmc.a"
  "libtmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
