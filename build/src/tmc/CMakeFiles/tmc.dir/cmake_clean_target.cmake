file(REMOVE_RECURSE
  "libtmc.a"
)
