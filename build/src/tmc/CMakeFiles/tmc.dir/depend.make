# Empty dependencies file for tmc.
# This may be replaced when dependencies are built.
