
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmc/alloc.cpp" "src/tmc/CMakeFiles/tmc.dir/alloc.cpp.o" "gcc" "src/tmc/CMakeFiles/tmc.dir/alloc.cpp.o.d"
  "/root/repo/src/tmc/barrier.cpp" "src/tmc/CMakeFiles/tmc.dir/barrier.cpp.o" "gcc" "src/tmc/CMakeFiles/tmc.dir/barrier.cpp.o.d"
  "/root/repo/src/tmc/common_memory.cpp" "src/tmc/CMakeFiles/tmc.dir/common_memory.cpp.o" "gcc" "src/tmc/CMakeFiles/tmc.dir/common_memory.cpp.o.d"
  "/root/repo/src/tmc/interrupt.cpp" "src/tmc/CMakeFiles/tmc.dir/interrupt.cpp.o" "gcc" "src/tmc/CMakeFiles/tmc.dir/interrupt.cpp.o.d"
  "/root/repo/src/tmc/mica.cpp" "src/tmc/CMakeFiles/tmc.dir/mica.cpp.o" "gcc" "src/tmc/CMakeFiles/tmc.dir/mica.cpp.o.d"
  "/root/repo/src/tmc/mpipe.cpp" "src/tmc/CMakeFiles/tmc.dir/mpipe.cpp.o" "gcc" "src/tmc/CMakeFiles/tmc.dir/mpipe.cpp.o.d"
  "/root/repo/src/tmc/stn.cpp" "src/tmc/CMakeFiles/tmc.dir/stn.cpp.o" "gcc" "src/tmc/CMakeFiles/tmc.dir/stn.cpp.o.d"
  "/root/repo/src/tmc/udn.cpp" "src/tmc/CMakeFiles/tmc.dir/udn.cpp.o" "gcc" "src/tmc/CMakeFiles/tmc.dir/udn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tilesim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tshmem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
