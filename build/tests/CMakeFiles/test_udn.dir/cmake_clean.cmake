file(REMOVE_RECURSE
  "CMakeFiles/test_udn.dir/test_udn.cpp.o"
  "CMakeFiles/test_udn.dir/test_udn.cpp.o.d"
  "test_udn"
  "test_udn.pdb"
  "test_udn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
