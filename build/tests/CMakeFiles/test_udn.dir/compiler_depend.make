# Empty compiler generated dependencies file for test_udn.
# This may be replaced when dependencies are built.
