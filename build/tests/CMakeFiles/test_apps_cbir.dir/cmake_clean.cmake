file(REMOVE_RECURSE
  "CMakeFiles/test_apps_cbir.dir/test_apps_cbir.cpp.o"
  "CMakeFiles/test_apps_cbir.dir/test_apps_cbir.cpp.o.d"
  "test_apps_cbir"
  "test_apps_cbir.pdb"
  "test_apps_cbir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_cbir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
