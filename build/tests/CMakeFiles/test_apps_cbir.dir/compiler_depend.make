# Empty compiler generated dependencies file for test_apps_cbir.
# This may be replaced when dependencies are built.
