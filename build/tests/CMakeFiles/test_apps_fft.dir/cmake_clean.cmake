file(REMOVE_RECURSE
  "CMakeFiles/test_apps_fft.dir/test_apps_fft.cpp.o"
  "CMakeFiles/test_apps_fft.dir/test_apps_fft.cpp.o.d"
  "test_apps_fft"
  "test_apps_fft.pdb"
  "test_apps_fft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
