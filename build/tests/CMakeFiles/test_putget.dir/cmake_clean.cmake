file(REMOVE_RECURSE
  "CMakeFiles/test_putget.dir/test_putget.cpp.o"
  "CMakeFiles/test_putget.dir/test_putget.cpp.o.d"
  "test_putget"
  "test_putget.pdb"
  "test_putget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_putget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
