file(REMOVE_RECURSE
  "CMakeFiles/test_stn.dir/test_stn.cpp.o"
  "CMakeFiles/test_stn.dir/test_stn.cpp.o.d"
  "test_stn"
  "test_stn.pdb"
  "test_stn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
