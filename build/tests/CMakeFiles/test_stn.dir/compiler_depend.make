# Empty compiler generated dependencies file for test_stn.
# This may be replaced when dependencies are built.
