file(REMOVE_RECURSE
  "CMakeFiles/test_device_runtime.dir/test_device_runtime.cpp.o"
  "CMakeFiles/test_device_runtime.dir/test_device_runtime.cpp.o.d"
  "test_device_runtime"
  "test_device_runtime.pdb"
  "test_device_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
