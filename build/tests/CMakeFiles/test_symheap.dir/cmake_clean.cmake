file(REMOVE_RECURSE
  "CMakeFiles/test_symheap.dir/test_symheap.cpp.o"
  "CMakeFiles/test_symheap.dir/test_symheap.cpp.o.d"
  "test_symheap"
  "test_symheap.pdb"
  "test_symheap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symheap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
