# Empty dependencies file for test_symheap.
# This may be replaced when dependencies are built.
