file(REMOVE_RECURSE
  "CMakeFiles/test_mica.dir/test_mica.cpp.o"
  "CMakeFiles/test_mica.dir/test_mica.cpp.o.d"
  "test_mica"
  "test_mica.pdb"
  "test_mica[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
