file(REMOVE_RECURSE
  "CMakeFiles/test_barrier_sync.dir/test_barrier_sync.cpp.o"
  "CMakeFiles/test_barrier_sync.dir/test_barrier_sync.cpp.o.d"
  "test_barrier_sync"
  "test_barrier_sync.pdb"
  "test_barrier_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_barrier_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
