# Empty dependencies file for test_barrier_sync.
# This may be replaced when dependencies are built.
