file(REMOVE_RECURSE
  "CMakeFiles/test_mem_model.dir/test_mem_model.cpp.o"
  "CMakeFiles/test_mem_model.dir/test_mem_model.cpp.o.d"
  "test_mem_model"
  "test_mem_model.pdb"
  "test_mem_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
