# Empty dependencies file for test_mpipe.
# This may be replaced when dependencies are built.
