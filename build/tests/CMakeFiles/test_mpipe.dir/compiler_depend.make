# Empty compiler generated dependencies file for test_mpipe.
# This may be replaced when dependencies are built.
