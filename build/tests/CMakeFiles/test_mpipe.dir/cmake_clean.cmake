file(REMOVE_RECURSE
  "CMakeFiles/test_mpipe.dir/test_mpipe.cpp.o"
  "CMakeFiles/test_mpipe.dir/test_mpipe.cpp.o.d"
  "test_mpipe"
  "test_mpipe.pdb"
  "test_mpipe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
