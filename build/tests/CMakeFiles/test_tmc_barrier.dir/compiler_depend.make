# Empty compiler generated dependencies file for test_tmc_barrier.
# This may be replaced when dependencies are built.
