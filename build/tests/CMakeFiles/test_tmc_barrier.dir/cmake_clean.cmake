file(REMOVE_RECURSE
  "CMakeFiles/test_tmc_barrier.dir/test_tmc_barrier.cpp.o"
  "CMakeFiles/test_tmc_barrier.dir/test_tmc_barrier.cpp.o.d"
  "test_tmc_barrier"
  "test_tmc_barrier.pdb"
  "test_tmc_barrier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tmc_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
